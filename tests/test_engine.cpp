/**
 * @file
 * DISE engine and controller tests: expansion mechanics, PT miss
 * detection via the pattern-counter scheme, RT geometry (direct-mapped,
 * set-associative, perfect), composed-fill penalties, table flushes,
 * and the OS-kernel virtualization layer.
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/dise/controller.hpp"
#include "src/dise/parser.hpp"

namespace dise {
namespace {

std::shared_ptr<ProductionSet>
mfiLikeSet()
{
    return std::make_shared<ProductionSet>(parseProductions(
        "P1: class == store -> R1\n"
        "P2: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @0x4000f00\n"
        "    T.INSN\n"));
}

DecodedInst
aLoad()
{
    return decode(makeMemory(Opcode::LDQ, 5, 9, 16));
}

TEST(Engine, PassThroughWithoutProductions)
{
    DiseEngine engine;
    const auto result = engine.expand(aLoad(), 0x4000000);
    EXPECT_FALSE(result.expanded);
    EXPECT_FALSE(result.ptMiss);
}

TEST(Engine, ExpansionProducesInstantiatedSequence)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto result = engine.expand(aLoad(), 0x4000000);
    ASSERT_TRUE(result.expanded);
    ASSERT_EQ(result.size(), 4u);
    EXPECT_EQ(result[0].op, Opcode::SRL);
    EXPECT_EQ(result[0].ra, 9); // T.RS
    EXPECT_EQ(result[3], aLoad());
    EXPECT_EQ(engine.stats().get("expansions"), 1u);
    EXPECT_EQ(engine.stats().get("replacement_insts"), 4u);
}

TEST(Engine, NonTriggerPassesThrough)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto result =
        engine.expand(decode(makeOperate(Opcode::ADDQ, 1, 2, 3)),
                      0x4000000);
    EXPECT_FALSE(result.expanded);
}

TEST(Engine, ColdPtMissThenHit)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto first = engine.expand(aLoad(), 0x4000000);
    EXPECT_TRUE(first.ptMiss);
    EXPECT_EQ(first.missPenalty,
              engine.config().missPenalty + engine.config().missPenalty);
    const auto second = engine.expand(aLoad(), 0x4000004);
    EXPECT_FALSE(second.ptMiss);
    EXPECT_FALSE(second.rtMiss);
    EXPECT_EQ(second.missPenalty, 0u);
}

TEST(Engine, PtMissEvenForNonMatchingInstanceOfCoveredOpcode)
{
    // The pattern-counter scheme is per-opcode: any fetched instance of
    // a covered opcode with a non-resident pattern group faults.
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load && rs == sp -> R1\n"
        "R1: T.INSN\n"));
    engine.setProductions(set);
    // This load does NOT use sp, but its opcode is covered.
    const auto result =
        engine.expand(decode(makeMemory(Opcode::LDQ, 1, 7, 0)),
                      0x4000000);
    EXPECT_FALSE(result.expanded);
    EXPECT_TRUE(result.ptMiss);
}

TEST(Engine, UncoveredOpcodeIsNotAMiss)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto result =
        engine.expand(decode(makeBranch(Opcode::BEQ, 1, 4)), 0x4000000);
    EXPECT_FALSE(result.ptMiss);
}

TEST(Engine, PtEvictionUnderPressure)
{
    // PT with a single entry and two single-opcode patterns: each fetch
    // of the other opcode faults its pattern back in.
    DiseConfig config;
    config.ptEntries = 1;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: op == ldq -> R1\n"
        "P2: op == stq -> R1\n"
        "R1: T.INSN\n"));
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000);
    engine.expand(st, 0x4000004);
    engine.expand(ld, 0x4000008);
    engine.expand(st, 0x400000c);
    EXPECT_EQ(engine.stats().get("pt_misses"), 4u);
}

TEST(Engine, RtPerfectNeverMisses)
{
    DiseConfig config;
    config.rtEntries = 0;
    DiseEngine engine(config);
    engine.setProductions(mfiLikeSet());
    const auto result = engine.expand(aLoad(), 0x4000000);
    EXPECT_FALSE(result.rtMiss);
}

TEST(Engine, RtColdMissThenResident)
{
    DiseEngine engine; // 2K entries
    engine.setProductions(mfiLikeSet());
    EXPECT_TRUE(engine.expand(aLoad(), 0x4000000).rtMiss);
    EXPECT_FALSE(engine.expand(aLoad(), 0x4000004).rtMiss);
    EXPECT_EQ(engine.stats().get("rt_misses"), 1u);
}

TEST(Engine, RtConflictsInTinyDirectMappedRt)
{
    // Two sequences of length 8 in an 8-entry direct-mapped RT: the
    // sets they occupy overlap, so alternating triggers thrash.
    DiseConfig config;
    config.rtEntries = 8;
    config.rtAssoc = 1;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>();
    for (int s = 0; s < 2; ++s) {
        ReplacementSeq seq;
        seq.name = "S" + std::to_string(s);
        for (int i = 0; i < 8; ++i)
            seq.insts.push_back(rTriggerInsn());
        const SeqId id = set->addSequence(seq);
        PatternSpec pattern;
        pattern.opcode = s == 0 ? Opcode::LDQ : Opcode::STQ;
        set->addPattern(pattern, id);
    }
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000);
    engine.expand(st, 0x4000004);
    EXPECT_TRUE(engine.expand(ld, 0x4000008).rtMiss);
    EXPECT_TRUE(engine.expand(st, 0x400000c).rtMiss);
}

TEST(Engine, RtAssociativityAvoidsConflicts)
{
    DiseConfig config;
    config.rtEntries = 16;
    config.rtAssoc = 2;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>();
    for (int s = 0; s < 2; ++s) {
        ReplacementSeq seq;
        seq.name = "S" + std::to_string(s);
        for (int i = 0; i < 8; ++i)
            seq.insts.push_back(rTriggerInsn());
        const SeqId id = set->addSequence(seq);
        PatternSpec pattern;
        pattern.opcode = s == 0 ? Opcode::LDQ : Opcode::STQ;
        set->addPattern(pattern, id);
    }
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000);
    engine.expand(st, 0x4000004);
    EXPECT_FALSE(engine.expand(ld, 0x4000008).rtMiss);
    EXPECT_FALSE(engine.expand(st, 0x400000c).rtMiss);
}

TEST(Engine, RtLongSequencesDoNotAliasAcrossIds)
{
    // Regression: the RT index used a hardwired id << 3 stride, so two
    // sequences longer than 8 instructions with adjacent ids overlapped
    // in the RT — re-expanding an already-resident sequence missed. The
    // stride must be derived from the active set's longest sequence.
    DiseConfig config;
    config.rtEntries = 64;
    config.rtAssoc = 1;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>();
    for (int s = 0; s < 2; ++s) {
        ReplacementSeq seq;
        seq.name = "L" + std::to_string(s);
        for (int i = 0; i < 9; ++i) // > 8: overflows an 8-slot stride
            seq.insts.push_back(rTriggerInsn());
        const SeqId id = set->addSequence(seq);
        PatternSpec pattern;
        pattern.opcode = s == 0 ? Opcode::LDQ : Opcode::STQ;
        set->addPattern(pattern, id);
    }
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000); // cold fill
    engine.expand(st, 0x4000004); // cold fill
    // Both sequences fit 64 entries with room to spare; re-expansion
    // must hit in full.
    EXPECT_FALSE(engine.expand(ld, 0x4000008).rtMiss);
    EXPECT_FALSE(engine.expand(st, 0x400000c).rtMiss);
    EXPECT_EQ(engine.stats().get("rt_misses"), 2u);
}

TEST(Engine, PtEvictionSplitsGroupResidency)
{
    // An opcode is PT-resident only while EVERY covering pattern is
    // resident. Evicting one pattern of a group must re-derive
    // residency so the next fetch of a covered opcode faults the whole
    // group back in.
    DiseConfig config;
    config.ptEntries = 2;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: op == ldq -> R1\n"
        "P2: class == load -> R1\n"
        "P3: op == stq -> R1\n"
        "R1: T.INSN\n"));
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000); // miss: fills P1+P2 (both cover ldq)
    EXPECT_EQ(engine.stats().get("pt_misses"), 1u);
    engine.expand(ld, 0x4000004); // resident
    EXPECT_EQ(engine.stats().get("pt_misses"), 1u);
    // stq faults P3 in; the 2-entry PT evicts LRU P1, splitting ldq's
    // {P1, P2} group even though P2 stays resident.
    engine.expand(st, 0x4000008);
    EXPECT_EQ(engine.stats().get("pt_misses"), 2u);
    // The split group means ldq is no longer resident: miss again.
    engine.expand(ld, 0x400000c);
    EXPECT_EQ(engine.stats().get("pt_misses"), 3u);
    engine.expand(ld, 0x4000010); // whole group refilled: resident
    EXPECT_EQ(engine.stats().get("pt_misses"), 3u);
}

TEST(Engine, ComposedFillPaysHigherPenalty)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    ReplacementSeq seq;
    seq.name = "C";
    seq.insts.push_back(rTriggerInsn());
    seq.composeOnFill = true;
    PatternSpec pattern;
    pattern.opclass = OpClass::Load;
    set->addPattern(pattern, set->addSequence(seq));
    engine.setProductions(set);
    const auto result = engine.expand(aLoad(), 0x4000000);
    ASSERT_TRUE(result.rtMiss);
    EXPECT_EQ(result.missPenalty,
              engine.config().missPenalty + // PT cold miss
                  engine.config().composedMissPenalty);
    EXPECT_EQ(engine.stats().get("rt_misses_composed"), 1u);
}

TEST(Engine, FlushTablesForcesRefill)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    engine.expand(aLoad(), 0x4000000);
    engine.flushTables();
    const auto result = engine.expand(aLoad(), 0x4000004);
    EXPECT_TRUE(result.ptMiss);
    EXPECT_TRUE(result.rtMiss);
}

TEST(Engine, ExpansionCacheMatchesDirectInstantiation)
{
    // The memoized fast path must return exactly what the IL would
    // produce, across register directives (T.RS/T.RT/T.RD, literals and
    // dedicated registers), immediates (literal, T.IMM, @abs targets)
    // and T.INSN.
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: addq T.RS, T.RT, $dr1\n"
        "    srl T.RD, #26, $dr2\n"
        "    ldq $dr3, T.IMM(T.RS)\n"
        "    beq $dr1, @0x4000f00\n"
        "    T.INSN\n"));
    engine.setProductions(set);
    const ReplacementSeq &seq = set->sequences().begin()->second;
    const DecodedInst trigger = aLoad();
    const Addr pc = 0x4000100;
    const std::vector<DecodedInst> direct =
        instantiateSeq(seq, trigger, pc);

    const auto first = engine.expand(trigger, pc); // cache fill
    ASSERT_EQ(first.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(first[i], direct[i]);
    const auto second = engine.expand(trigger, pc); // cache hit
    ASSERT_EQ(second.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(second[i], direct[i]);
    EXPECT_EQ(engine.stats().get("expand_cache_fills"), 1u);
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 1u);
}

TEST(Engine, ExpansionCacheCoversParamDirectives)
{
    // Aware-ACF directives: codeword parameters in register fields
    // (T.P1..T.P3) and immediate fields (T.P*, T.PIMM). Distinct
    // parameter values are distinct trigger words, so they must get
    // distinct cache entries.
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    {
        ReplacementSeq seq;
        seq.name = "params";
        ReplacementInst ri;
        ri.templ = decode(makeOperate(Opcode::ADDQ, 0, 0, 0));
        ri.raDir = RegDirective::Param1;
        ri.rbDir = RegDirective::Param2;
        ri.rcDir = RegDirective::Param3;
        seq.insts.push_back(ri);
        set->addSequenceWithId(0, seq);
    }
    {
        ReplacementSeq seq;
        seq.name = "pimm";
        ReplacementInst ri;
        ri.templ = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
        ri.immDir = ImmDirective::ParamImm;
        seq.insts.push_back(ri);
        set->addSequenceWithId(1, seq);
    }
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    set->addTagPattern(cw, 0);
    engine.setProductions(set);

    const DecodedInst a =
        decode(makeCodeword(Opcode::RES0, 0, 5, 9, 16));
    const DecodedInst b =
        decode(makeCodeword(Opcode::RES0, 0, 6, 10, 17));
    const DecodedInst c = decode(makeCodewordImm(Opcode::RES0, 1, -42));
    for (const DecodedInst &trigger : {a, b, c}) {
        const auto result = engine.expand(trigger, 0x4000000);
        ASSERT_TRUE(result.expanded);
        const std::vector<DecodedInst> direct =
            instantiateSeq(*result.seq, trigger, 0x4000000);
        ASSERT_EQ(result.size(), direct.size());
        for (size_t i = 0; i < direct.size(); ++i)
            EXPECT_EQ(result[i], direct[i]);
    }
    // Re-expansions hit and still match.
    for (const DecodedInst &trigger : {a, b, c}) {
        const auto result = engine.expand(trigger, 0x4000004);
        const std::vector<DecodedInst> direct =
            instantiateSeq(*result.seq, trigger, 0x4000004);
        ASSERT_EQ(result.size(), direct.size());
        for (size_t i = 0; i < direct.size(); ++i)
            EXPECT_EQ(result[i], direct[i]);
    }
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 3u);
}

TEST(Engine, ExpansionCacheCoversTriggerRawReEmit)
{
    // Sandboxing's re-emit idiom: T.OP with raw register fields copies
    // the trigger through with a substituted base. Two different loads
    // must not share a cache entry.
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    ReplacementSeq seq;
    seq.name = "reemit";
    ReplacementInst ri;
    ri.templ = decode(makeMemory(Opcode::LDL, 0, 0, 0));
    ri.opDir = OpDirective::Trigger;
    ri.raDir = RegDirective::TriggerRaw;
    ri.rbDir = RegDirective::TriggerRaw;
    ri.rcDir = RegDirective::TriggerRaw;
    ri.immDir = ImmDirective::TriggerImm;
    seq.insts.push_back(ri);
    PatternSpec pattern;
    pattern.opclass = OpClass::Load;
    set->addPattern(pattern, set->addSequence(seq));
    engine.setProductions(set);

    const DecodedInst x = decode(makeMemory(Opcode::LDQ, 5, 9, 16));
    const DecodedInst y = decode(makeMemory(Opcode::LDL, 3, 7, -8));
    for (int round = 0; round < 2; ++round) {
        for (const DecodedInst &trigger : {x, y}) {
            const auto result = engine.expand(trigger, 0x4000000);
            ASSERT_TRUE(result.expanded);
            const std::vector<DecodedInst> direct =
                instantiateSeq(seq, trigger, 0x4000000);
            ASSERT_EQ(result.size(), direct.size());
            for (size_t i = 0; i < direct.size(); ++i)
                EXPECT_EQ(result[i], direct[i]);
        }
    }
    EXPECT_EQ(engine.stats().get("expand_cache_fills"), 2u);
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 2u);
}

TEST(Engine, ExpansionCachePcDependentKeyedByPC)
{
    // Sequences that read the trigger's PC (T.PC, @abs targets) must be
    // memoized per PC: the same trigger word at two PCs instantiates
    // differently.
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: addq T.RS, T.PC, $dr1\n"
        "    beq $dr1, @0x4000f00\n"
        "    T.INSN\n"));
    engine.setProductions(set);
    const ReplacementSeq &seq = set->sequences().begin()->second;
    const DecodedInst trigger = aLoad();

    const auto atA = engine.expand(trigger, 0x4000000);
    const auto directA = instantiateSeq(seq, trigger, 0x4000000);
    ASSERT_EQ(atA.size(), directA.size());
    for (size_t i = 0; i < directA.size(); ++i)
        EXPECT_EQ(atA[i], directA[i]);

    const auto atB = engine.expand(trigger, 0x4000800);
    const auto directB = instantiateSeq(seq, trigger, 0x4000800);
    ASSERT_EQ(atB.size(), directB.size());
    for (size_t i = 0; i < directB.size(); ++i)
        EXPECT_EQ(atB[i], directB[i]);

    // Distinct PCs are distinct entries; revisiting the first PC hits
    // and yields the first PC's instantiation.
    EXPECT_EQ(engine.stats().get("expand_cache_fills"), 2u);
    const auto again = engine.expand(trigger, 0x4000000);
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 1u);
    ASSERT_EQ(again.size(), directA.size());
    for (size_t i = 0; i < directA.size(); ++i)
        EXPECT_EQ(again[i], directA[i]);
}

TEST(Engine, ExpansionCachePcIndependentSharedAcrossPCs)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    T.INSN\n"));
    engine.setProductions(set);
    engine.expand(aLoad(), 0x4000000);
    engine.expand(aLoad(), 0x5000000);
    EXPECT_EQ(engine.stats().get("expand_cache_fills"), 1u);
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 1u);
}

TEST(Engine, ExpansionCacheDroppedOnFlushAndReinstall)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    engine.expand(aLoad(), 0x4000000);
    engine.expand(aLoad(), 0x4000000);
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 1u);
    engine.flushTables();
    engine.expand(aLoad(), 0x4000000); // refill, not a hit
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 1u);
    EXPECT_EQ(engine.stats().get("expand_cache_fills"), 2u);
    engine.setProductions(mfiLikeSet());
    engine.expand(aLoad(), 0x4000000); // new productions: refill again
    EXPECT_EQ(engine.stats().get("expand_cache_hits"), 1u);
    EXPECT_EQ(engine.stats().get("expand_cache_fills"), 3u);
}

TEST(Engine, ExpansionCacheArchStatsMatchSlowPath)
{
    // Architectural counters (expansions, PT/RT misses, replacement
    // instructions) and the produced instruction stream must be
    // bit-identical with the fast path on and off.
    DiseConfig slow;
    slow.expansionCache = false;
    DiseConfig fastSmall;
    fastSmall.expansionCacheMaxEntries = 2; // exercise the full-cache path
    for (const DiseConfig &fastConfig : {DiseConfig(), fastSmall}) {
        DiseEngine fast(fastConfig);
        DiseEngine ref(slow);
        fast.setProductions(mfiLikeSet());
        ref.setProductions(mfiLikeSet());
        const std::vector<DecodedInst> stream = {
            aLoad(),
            decode(makeOperate(Opcode::ADDQ, 1, 2, 3)),
            decode(makeMemory(Opcode::STQ, 4, 5, 8)),
            aLoad(),
            aLoad(),
            decode(makeMemory(Opcode::LDQ, 6, 7, 24)),
            decode(makeMemory(Opcode::STQ, 4, 5, 8)),
        };
        Addr pc = 0x4000000;
        for (const DecodedInst &fetched : stream) {
            const auto a = fast.expand(fetched, pc);
            const auto b = ref.expand(fetched, pc);
            EXPECT_EQ(a.expanded, b.expanded);
            EXPECT_EQ(a.ptMiss, b.ptMiss);
            EXPECT_EQ(a.rtMiss, b.rtMiss);
            EXPECT_EQ(a.missPenalty, b.missPenalty);
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i)
                EXPECT_EQ(a[i], b[i]);
            pc += 4;
        }
        for (const char *key : {"inspected", "expansions", "pt_misses",
                                "rt_misses", "replacement_insts"}) {
            EXPECT_EQ(fast.stats().get(key), ref.stats().get(key))
                << key;
        }
        EXPECT_EQ(ref.stats().get("expand_cache_fills"), 0u);
        EXPECT_EQ(ref.stats().get("expand_cache_hits"), 0u);
    }
}

TEST(Engine, ExplicitTagSelectsSequence)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    for (uint16_t tag = 0; tag < 4; ++tag) {
        ReplacementSeq seq;
        seq.name = "D" + std::to_string(tag);
        for (int i = 0; i <= tag; ++i)
            seq.insts.push_back(rTriggerInsn());
        set->addSequenceWithId(tag, seq);
    }
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    set->addTagPattern(cw, 0);
    engine.setProductions(set);
    for (uint16_t tag = 0; tag < 4; ++tag) {
        const auto result = engine.expand(
            decode(makeCodeword(Opcode::RES0, tag, 0, 0, 0)), 0x4000000);
        ASSERT_TRUE(result.expanded);
        EXPECT_EQ(result.size(), size_t(tag) + 1);
    }
}

TEST(Engine, UnboundTagIsFatal)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    set->addSequenceWithId(0, ReplacementSeq{"D0", {rTriggerInsn()}});
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    set->addTagPattern(cw, 0);
    engine.setProductions(set);
    EXPECT_THROW(engine.expand(
                     decode(makeCodeword(Opcode::RES0, 99, 0, 0, 0)),
                     0x4000000),
                 FatalError);
}

TEST(Controller, InstallAndDeactivate)
{
    DiseController controller;
    controller.install(mfiLikeSet());
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    controller.deactivate();
    EXPECT_FALSE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

TEST(OsKernel, KernelAcfsApplyToEveryProcess)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    DiseRegFile regs;
    kernel.installKernelAcf("mfi", *mfiLikeSet());
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    kernel.switchTo(1, regs);
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

TEST(OsKernel, UserAcfsDeactivatedOnSwitch)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    DiseRegFile regs;
    kernel.submitUserAcf(0, *mfiLikeSet()); // current pid is 0
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    kernel.switchTo(1, regs);
    EXPECT_FALSE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    kernel.switchTo(0, regs);
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

TEST(OsKernel, DedicatedRegistersContextSwitch)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    DiseRegFile regs;
    regs[2] = 0x1111;
    kernel.switchTo(1, regs); // saves pid 0's registers
    EXPECT_EQ(regs[2], 0u);   // fresh process state
    regs[2] = 0x2222;
    kernel.switchTo(0, regs);
    EXPECT_EQ(regs[2], 0x1111u);
    kernel.switchTo(1, regs);
    EXPECT_EQ(regs[2], 0x2222u);
}

TEST(OsKernel, RemoveKernelAcf)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    kernel.installKernelAcf("mfi", *mfiLikeSet());
    kernel.removeKernelAcf("mfi");
    EXPECT_FALSE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

} // namespace
} // namespace dise
