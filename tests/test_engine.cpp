/**
 * @file
 * DISE engine and controller tests: expansion mechanics, PT miss
 * detection via the pattern-counter scheme, RT geometry (direct-mapped,
 * set-associative, perfect), composed-fill penalties, table flushes,
 * and the OS-kernel virtualization layer.
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/dise/controller.hpp"
#include "src/dise/parser.hpp"

namespace dise {
namespace {

std::shared_ptr<ProductionSet>
mfiLikeSet()
{
    return std::make_shared<ProductionSet>(parseProductions(
        "P1: class == store -> R1\n"
        "P2: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @0x4000f00\n"
        "    T.INSN\n"));
}

DecodedInst
aLoad()
{
    return decode(makeMemory(Opcode::LDQ, 5, 9, 16));
}

TEST(Engine, PassThroughWithoutProductions)
{
    DiseEngine engine;
    const auto result = engine.expand(aLoad(), 0x4000000);
    EXPECT_FALSE(result.expanded);
    EXPECT_FALSE(result.ptMiss);
}

TEST(Engine, ExpansionProducesInstantiatedSequence)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto result = engine.expand(aLoad(), 0x4000000);
    ASSERT_TRUE(result.expanded);
    ASSERT_EQ(result.insts.size(), 4u);
    EXPECT_EQ(result.insts[0].op, Opcode::SRL);
    EXPECT_EQ(result.insts[0].ra, 9); // T.RS
    EXPECT_EQ(result.insts[3], aLoad());
    EXPECT_EQ(engine.stats().get("expansions"), 1u);
    EXPECT_EQ(engine.stats().get("replacement_insts"), 4u);
}

TEST(Engine, NonTriggerPassesThrough)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto result =
        engine.expand(decode(makeOperate(Opcode::ADDQ, 1, 2, 3)),
                      0x4000000);
    EXPECT_FALSE(result.expanded);
}

TEST(Engine, ColdPtMissThenHit)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto first = engine.expand(aLoad(), 0x4000000);
    EXPECT_TRUE(first.ptMiss);
    EXPECT_EQ(first.missPenalty,
              engine.config().missPenalty + engine.config().missPenalty);
    const auto second = engine.expand(aLoad(), 0x4000004);
    EXPECT_FALSE(second.ptMiss);
    EXPECT_FALSE(second.rtMiss);
    EXPECT_EQ(second.missPenalty, 0u);
}

TEST(Engine, PtMissEvenForNonMatchingInstanceOfCoveredOpcode)
{
    // The pattern-counter scheme is per-opcode: any fetched instance of
    // a covered opcode with a non-resident pattern group faults.
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load && rs == sp -> R1\n"
        "R1: T.INSN\n"));
    engine.setProductions(set);
    // This load does NOT use sp, but its opcode is covered.
    const auto result =
        engine.expand(decode(makeMemory(Opcode::LDQ, 1, 7, 0)),
                      0x4000000);
    EXPECT_FALSE(result.expanded);
    EXPECT_TRUE(result.ptMiss);
}

TEST(Engine, UncoveredOpcodeIsNotAMiss)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    const auto result =
        engine.expand(decode(makeBranch(Opcode::BEQ, 1, 4)), 0x4000000);
    EXPECT_FALSE(result.ptMiss);
}

TEST(Engine, PtEvictionUnderPressure)
{
    // PT with a single entry and two single-opcode patterns: each fetch
    // of the other opcode faults its pattern back in.
    DiseConfig config;
    config.ptEntries = 1;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: op == ldq -> R1\n"
        "P2: op == stq -> R1\n"
        "R1: T.INSN\n"));
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000);
    engine.expand(st, 0x4000004);
    engine.expand(ld, 0x4000008);
    engine.expand(st, 0x400000c);
    EXPECT_EQ(engine.stats().get("pt_misses"), 4u);
}

TEST(Engine, RtPerfectNeverMisses)
{
    DiseConfig config;
    config.rtEntries = 0;
    DiseEngine engine(config);
    engine.setProductions(mfiLikeSet());
    const auto result = engine.expand(aLoad(), 0x4000000);
    EXPECT_FALSE(result.rtMiss);
}

TEST(Engine, RtColdMissThenResident)
{
    DiseEngine engine; // 2K entries
    engine.setProductions(mfiLikeSet());
    EXPECT_TRUE(engine.expand(aLoad(), 0x4000000).rtMiss);
    EXPECT_FALSE(engine.expand(aLoad(), 0x4000004).rtMiss);
    EXPECT_EQ(engine.stats().get("rt_misses"), 1u);
}

TEST(Engine, RtConflictsInTinyDirectMappedRt)
{
    // Two sequences of length 8 in an 8-entry direct-mapped RT: the
    // sets they occupy overlap, so alternating triggers thrash.
    DiseConfig config;
    config.rtEntries = 8;
    config.rtAssoc = 1;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>();
    for (int s = 0; s < 2; ++s) {
        ReplacementSeq seq;
        seq.name = "S" + std::to_string(s);
        for (int i = 0; i < 8; ++i)
            seq.insts.push_back(rTriggerInsn());
        const SeqId id = set->addSequence(seq);
        PatternSpec pattern;
        pattern.opcode = s == 0 ? Opcode::LDQ : Opcode::STQ;
        set->addPattern(pattern, id);
    }
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000);
    engine.expand(st, 0x4000004);
    EXPECT_TRUE(engine.expand(ld, 0x4000008).rtMiss);
    EXPECT_TRUE(engine.expand(st, 0x400000c).rtMiss);
}

TEST(Engine, RtAssociativityAvoidsConflicts)
{
    DiseConfig config;
    config.rtEntries = 16;
    config.rtAssoc = 2;
    DiseEngine engine(config);
    auto set = std::make_shared<ProductionSet>();
    for (int s = 0; s < 2; ++s) {
        ReplacementSeq seq;
        seq.name = "S" + std::to_string(s);
        for (int i = 0; i < 8; ++i)
            seq.insts.push_back(rTriggerInsn());
        const SeqId id = set->addSequence(seq);
        PatternSpec pattern;
        pattern.opcode = s == 0 ? Opcode::LDQ : Opcode::STQ;
        set->addPattern(pattern, id);
    }
    engine.setProductions(set);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    engine.expand(ld, 0x4000000);
    engine.expand(st, 0x4000004);
    EXPECT_FALSE(engine.expand(ld, 0x4000008).rtMiss);
    EXPECT_FALSE(engine.expand(st, 0x400000c).rtMiss);
}

TEST(Engine, ComposedFillPaysHigherPenalty)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    ReplacementSeq seq;
    seq.name = "C";
    seq.insts.push_back(rTriggerInsn());
    seq.composeOnFill = true;
    PatternSpec pattern;
    pattern.opclass = OpClass::Load;
    set->addPattern(pattern, set->addSequence(seq));
    engine.setProductions(set);
    const auto result = engine.expand(aLoad(), 0x4000000);
    ASSERT_TRUE(result.rtMiss);
    EXPECT_EQ(result.missPenalty,
              engine.config().missPenalty + // PT cold miss
                  engine.config().composedMissPenalty);
    EXPECT_EQ(engine.stats().get("rt_misses_composed"), 1u);
}

TEST(Engine, FlushTablesForcesRefill)
{
    DiseEngine engine;
    engine.setProductions(mfiLikeSet());
    engine.expand(aLoad(), 0x4000000);
    engine.flushTables();
    const auto result = engine.expand(aLoad(), 0x4000004);
    EXPECT_TRUE(result.ptMiss);
    EXPECT_TRUE(result.rtMiss);
}

TEST(Engine, ExplicitTagSelectsSequence)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    for (uint16_t tag = 0; tag < 4; ++tag) {
        ReplacementSeq seq;
        seq.name = "D" + std::to_string(tag);
        for (int i = 0; i <= tag; ++i)
            seq.insts.push_back(rTriggerInsn());
        set->addSequenceWithId(tag, seq);
    }
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    set->addTagPattern(cw, 0);
    engine.setProductions(set);
    for (uint16_t tag = 0; tag < 4; ++tag) {
        const auto result = engine.expand(
            decode(makeCodeword(Opcode::RES0, tag, 0, 0, 0)), 0x4000000);
        ASSERT_TRUE(result.expanded);
        EXPECT_EQ(result.insts.size(), size_t(tag) + 1);
    }
}

TEST(Engine, UnboundTagIsFatal)
{
    DiseEngine engine;
    auto set = std::make_shared<ProductionSet>();
    set->addSequenceWithId(0, ReplacementSeq{"D0", {rTriggerInsn()}});
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    set->addTagPattern(cw, 0);
    engine.setProductions(set);
    EXPECT_THROW(engine.expand(
                     decode(makeCodeword(Opcode::RES0, 99, 0, 0, 0)),
                     0x4000000),
                 FatalError);
}

TEST(Controller, InstallAndDeactivate)
{
    DiseController controller;
    controller.install(mfiLikeSet());
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    controller.deactivate();
    EXPECT_FALSE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

TEST(OsKernel, KernelAcfsApplyToEveryProcess)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    DiseRegFile regs;
    kernel.installKernelAcf("mfi", *mfiLikeSet());
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    kernel.switchTo(1, regs);
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

TEST(OsKernel, UserAcfsDeactivatedOnSwitch)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    DiseRegFile regs;
    kernel.submitUserAcf(0, *mfiLikeSet()); // current pid is 0
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    kernel.switchTo(1, regs);
    EXPECT_FALSE(controller.engine().expand(aLoad(), 0x4000000).expanded);
    kernel.switchTo(0, regs);
    EXPECT_TRUE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

TEST(OsKernel, DedicatedRegistersContextSwitch)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    DiseRegFile regs;
    regs[2] = 0x1111;
    kernel.switchTo(1, regs); // saves pid 0's registers
    EXPECT_EQ(regs[2], 0u);   // fresh process state
    regs[2] = 0x2222;
    kernel.switchTo(0, regs);
    EXPECT_EQ(regs[2], 0x1111u);
    kernel.switchTo(1, regs);
    EXPECT_EQ(regs[2], 0x2222u);
}

TEST(OsKernel, RemoveKernelAcf)
{
    DiseController controller;
    DiseOsKernel kernel(controller);
    kernel.installKernelAcf("mfi", *mfiLikeSet());
    kernel.removeKernelAcf("mfi");
    EXPECT_FALSE(controller.engine().expand(aLoad(), 0x4000000).expanded);
}

} // namespace
} // namespace dise
