/**
 * @file
 * Unit tests for the common utilities: bit manipulation, the
 * deterministic RNG, statistics groups and the table renderer.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"

namespace dise {
namespace {

TEST(Bits, ExtractBasic)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(0xffffffffffffffffULL, 0, 64), 0xffffffffffffffffULL);
}

TEST(Bits, InsertRoundTrip)
{
    uint64_t word = 0;
    word = insertBits(word, 26, 6, 0x15);
    word = insertBits(word, 21, 5, 7);
    word = insertBits(word, 0, 16, 0x8001);
    EXPECT_EQ(bits(word, 26, 6), 0x15u);
    EXPECT_EQ(bits(word, 21, 5), 7u);
    EXPECT_EQ(bits(word, 0, 16), 0x8001u);
}

TEST(Bits, InsertReplacesOldField)
{
    uint64_t word = ~uint64_t(0);
    word = insertBits(word, 8, 8, 0);
    EXPECT_EQ(bits(word, 8, 8), 0u);
    EXPECT_EQ(bits(word, 0, 8), 0xffu);
    EXPECT_EQ(bits(word, 16, 8), 0xffu);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1fffff, 21), -1);
    EXPECT_EQ(signExtend(42, 21), 42);
}

TEST(Bits, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(Bits, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}

TEST(Bits, Log2AndPow2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
}

TEST(Bits, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(0x8000000000000001ULL), 2u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, AddSetGet)
{
    StatGroup stats("test");
    EXPECT_EQ(stats.get("x"), 0u);
    stats.add("x");
    stats.add("x", 4);
    EXPECT_EQ(stats.get("x"), 5u);
    stats.set("x", 2);
    EXPECT_EQ(stats.get("x"), 2u);
}

TEST(Stats, ResetZeroesEverything)
{
    StatGroup stats("test");
    stats.add("a", 3);
    stats.add("b", 7);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.get("b"), 0u);
}

TEST(Stats, DumpFormat)
{
    StatGroup stats("grp");
    stats.add("hits", 2);
    EXPECT_EQ(stats.dump(), "grp.hits 2\n");
}

TEST(Stats, SafeRatio)
{
    EXPECT_DOUBLE_EQ(safeRatio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(safeRatio(1, 0), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ArityMismatchPanics)
{
    TextTable table({"one", "two"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 3), "2.000");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, StrFormat)
{
    EXPECT_EQ(strFormat("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strFormat("%04x", 0xab), "00ab");
}

} // namespace
} // namespace dise
