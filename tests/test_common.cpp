/**
 * @file
 * Unit tests for the common utilities: bit manipulation, the
 * deterministic RNG, statistics groups and registries, JSON
 * serialization, the single-flight build cache and the table renderer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/common/bits.hpp"
#include "src/common/json.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/common/singleflight.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"

namespace dise {
namespace {

TEST(Bits, ExtractBasic)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(0xffffffffffffffffULL, 0, 64), 0xffffffffffffffffULL);
}

TEST(Bits, InsertRoundTrip)
{
    uint64_t word = 0;
    word = insertBits(word, 26, 6, 0x15);
    word = insertBits(word, 21, 5, 7);
    word = insertBits(word, 0, 16, 0x8001);
    EXPECT_EQ(bits(word, 26, 6), 0x15u);
    EXPECT_EQ(bits(word, 21, 5), 7u);
    EXPECT_EQ(bits(word, 0, 16), 0x8001u);
}

TEST(Bits, InsertReplacesOldField)
{
    uint64_t word = ~uint64_t(0);
    word = insertBits(word, 8, 8, 0);
    EXPECT_EQ(bits(word, 8, 8), 0u);
    EXPECT_EQ(bits(word, 0, 8), 0xffu);
    EXPECT_EQ(bits(word, 16, 8), 0xffu);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1fffff, 21), -1);
    EXPECT_EQ(signExtend(42, 21), 42);
}

TEST(Bits, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(Bits, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}

TEST(Bits, Log2AndPow2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
}

TEST(Bits, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(0x8000000000000001ULL), 2u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, AddSetGet)
{
    StatGroup stats("test");
    EXPECT_EQ(stats.get("x"), 0u);
    stats.add("x");
    stats.add("x", 4);
    EXPECT_EQ(stats.get("x"), 5u);
    stats.set("x", 2);
    EXPECT_EQ(stats.get("x"), 2u);
}

TEST(Stats, ResetZeroesEverything)
{
    StatGroup stats("test");
    stats.add("a", 3);
    stats.add("b", 7);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.get("b"), 0u);
}

TEST(Stats, DumpFormat)
{
    StatGroup stats("grp");
    stats.add("hits", 2);
    EXPECT_EQ(stats.dump(), "grp.hits 2\n");
}

TEST(Stats, SafeRatio)
{
    EXPECT_DOUBLE_EQ(safeRatio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(safeRatio(1, 0), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ArityMismatchPanics)
{
    TextTable table({"one", "two"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 3), "2.000");
}

TEST(Json, RoundTripPreservesTypesAndValues)
{
    Json doc = Json::object();
    doc["big"] = Json(uint64_t(1) << 63); // would lose bits as double
    doc["pi"] = Json(3.25);
    doc["s"] = Json(std::string("a\"b\\c\n\tz"));
    doc["flag"] = Json(true);
    doc["nothing"] = Json();
    Json arr = Json::array();
    arr.push_back(Json(uint64_t(1)));
    arr.push_back(Json("two"));
    doc["arr"] = std::move(arr);
    for (const int indent : {0, 2}) {
        const Json back = Json::parse(doc.dump(indent));
        EXPECT_EQ(back.at("big").asUInt(), uint64_t(1) << 63);
        EXPECT_DOUBLE_EQ(back.at("pi").asDouble(), 3.25);
        EXPECT_EQ(back.at("s").asString(), "a\"b\\c\n\tz");
        EXPECT_TRUE(back.at("flag").asBool());
        EXPECT_TRUE(back.at("nothing").isNull());
        EXPECT_EQ(back.at("arr").size(), 2u);
        EXPECT_EQ(back.at("arr").items()[0].asUInt(), 1u);
        EXPECT_EQ(back.at("arr").items()[1].asString(), "two");
        // Deterministic: re-serializing the parse yields the same text.
        EXPECT_EQ(back.dump(indent), doc.dump(indent));
    }
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":}"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("{} trailing"), FatalError);
    EXPECT_THROW(Json::parse("nul"), FatalError);
}

TEST(StatsRegistry, JsonRoundTrip)
{
    StatGroup l1("l1i");
    l1.set("accesses", 100);
    l1.set("misses", 25);
    StatsRegistry reg;
    reg.add("mem.l1i", &l1);
    reg.set("run.outcome", Json("exit"));
    reg.set("host.seconds", Json(1.5));
    reg.addRatio("mem.l1i.miss_rate", "mem.l1i.misses",
                 "mem.l1i.accesses");

    const Json doc = Json::parse(reg.toJson().dump(2));
    EXPECT_EQ(doc.at("mem").at("l1i").at("accesses").asUInt(), 100u);
    EXPECT_EQ(doc.at("mem").at("l1i").at("misses").asUInt(), 25u);
    EXPECT_DOUBLE_EQ(doc.at("mem").at("l1i").at("miss_rate").asDouble(),
                     0.25);
    EXPECT_EQ(doc.at("run").at("outcome").asString(), "exit");
    EXPECT_DOUBLE_EQ(doc.at("host").at("seconds").asDouble(), 1.5);

    EXPECT_DOUBLE_EQ(reg.value("mem.l1i.miss_rate"), 0.25);
    EXPECT_DOUBLE_EQ(reg.value("mem.l1i.misses"), 25.0);
    EXPECT_DOUBLE_EQ(reg.value("no.such.path"), 0.0);

    // The registry reads groups lazily: updates after registration are
    // visible at the next serialization.
    l1.add("misses", 25);
    EXPECT_DOUBLE_EQ(reg.value("mem.l1i.miss_rate"), 0.5);
}

TEST(SingleFlight, OneBuildPerKeyUnderContention)
{
    SingleFlightCache<std::string, int> cache;
    std::atomic<int> builds{0};
    std::atomic<int> sum{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (const std::string key : {"a", "b"}) {
                const int &value = cache.get(key, [&] {
                    builds.fetch_add(1);
                    // Widen the race window: other workers must wait,
                    // not start a second build.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                    return key == "a" ? 1 : 2;
                });
                sum.fetch_add(value);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(builds.load(), 2);   // exactly one build per key
    EXPECT_EQ(sum.load(), 8 * 3);  // every caller saw the built value
}

TEST(SingleFlight, BuilderFailurePropagatesWithoutRetry)
{
    SingleFlightCache<int, int> cache;
    std::atomic<int> builds{0};
    const auto boom = [&]() -> int {
        builds.fetch_add(1);
        fatal("build failed");
    };
    EXPECT_THROW(cache.get(7, boom), FatalError);
    // The failure is cached: later callers rethrow, never rebuild.
    EXPECT_THROW(cache.get(7, boom), FatalError);
    EXPECT_EQ(builds.load(), 1);
}

TEST(SingleFlight, LruEvictionBoundsTheCache)
{
    SingleFlightCache<std::string, int> cache(/*retryFailures=*/false,
                                              /*maxEntries=*/2);
    std::atomic<int> builds{0};
    const auto builder = [&](int v) {
        return [&builds, v] {
            builds.fetch_add(1);
            return v;
        };
    };
    EXPECT_EQ(cache.getCopy("a", builder(1)), 1);
    EXPECT_EQ(cache.getCopy("b", builder(2)), 2);
    // Touch "a" so "b" is the LRU victim when "c" arrives.
    EXPECT_EQ(cache.getCopy("a", builder(99)), 1);
    EXPECT_EQ(cache.getCopy("c", builder(3)), 3);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(builds.load(), 3);

    // "a" survived (still cached); "b" was evicted and rebuilds.
    EXPECT_EQ(cache.getCopy("a", builder(99)), 1);
    EXPECT_EQ(builds.load(), 3);
    EXPECT_EQ(cache.getCopy("b", builder(4)), 4);
    EXPECT_EQ(builds.load(), 4);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SingleFlight, EvictionSkipsEntriesMidBuild)
{
    // Cap 1, but the in-flight build for "slow" must not be evicted
    // by "fast" arriving — its waiter still gets the built value.
    SingleFlightCache<std::string, int> cache(/*retryFailures=*/false,
                                              /*maxEntries=*/1);
    std::atomic<bool> building{false};
    std::atomic<bool> release{false};
    std::thread slow([&] {
        const int v = cache.getCopy("slow", [&] {
            building.store(true);
            while (!release.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            return 10;
        });
        EXPECT_EQ(v, 10);
    });
    while (!building.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(cache.getCopy("fast", [] { return 20; }), 20);
    release.store(true);
    slow.join();
    // "slow" outlived the insertion of "fast" despite the cap of 1.
    std::atomic<int> rebuilds{0};
    EXPECT_EQ(cache.getCopy("slow", [&] {
                  rebuilds.fetch_add(1);
                  return 11;
              }),
              10);
    EXPECT_EQ(rebuilds.load(), 0);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, StrFormat)
{
    EXPECT_EQ(strFormat("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strFormat("%04x", 0xab), "00ab");
}

} // namespace
} // namespace dise
