/**
 * @file
 * Fault-injection tests: deterministic plan generation and application,
 * campaign reproducibility (same seed => bit-identical classifications),
 * PT/RT parity detection and recovery, and the guarantee that parity
 * modeling changes nothing in fault-free runs.
 */

#include <gtest/gtest.h>

#include "src/acf/mfi.hpp"
#include "src/assembler/assembler.hpp"
#include "src/faults/campaign.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {
namespace {

/** Store/load loop with an output, a clean exit, and an MFI handler. */
Program
loopProgram()
{
    return assemble(".text\n"
                    "main:\n"
                    "    laq buf, t5\n"
                    "    li 0, t0\n"
                    "    li 40, t1\n"
                    "loop:\n"
                    "    stq t0, 0(t5)\n"
                    "    ldq t2, 0(t5)\n"
                    "    addq t3, t2, t3\n"
                    "    addq t0, 1, t0\n"
                    "    cmplt t0, t1, t4\n"
                    "    bne t4, loop\n"
                    "    mov t3, a0\n    li 2, v0\n    syscall\n"
                    "    li 0, v0\n    li 0, a0\n    syscall\n"
                    "error:\n"
                    "    li 0, v0\n    li 42, a0\n    syscall\n"
                    ".data\nbuf:\n    .quad 0\n");
}

/** Fresh MFI (DISE3) controller for @p prog with @p parity. */
std::unique_ptr<DiseController>
mfiController(const Program &prog, bool parity)
{
    DiseConfig config;
    config.parityChecks = parity;
    auto controller = std::make_unique<DiseController>(config);
    controller->install(std::make_shared<ProductionSet>(
        makeMfiProductions(prog, MfiOptions{})));
    return controller;
}

CampaignSetup
mfiSetup(const Program &prog)
{
    CampaignSetup setup;
    setup.prog = &prog;
    setup.makeAcf = [&prog] {
        return std::make_shared<const ProductionSet>(
            makeMfiProductions(prog, MfiOptions{}));
    };
    setup.initCore = [&prog](ExecCore &core) {
        initMfiRegisters(core, prog);
    };
    return setup;
}

TEST(FaultPlan, SameSeedSamePlans)
{
    Rng a(42), b(42);
    for (int i = 0; i < 16; ++i) {
        const auto target = static_cast<FaultTarget>(i % 5);
        const FaultPlan pa = makeFaultPlan(a, target, 1000);
        const FaultPlan pb = makeFaultPlan(b, target, 1000);
        EXPECT_EQ(pa.triggerAppInst, pb.triggerAppInst);
        EXPECT_EQ(pa.pick, pb.pick);
        EXPECT_EQ(pa.bit, pb.bit);
    }
}

TEST(FaultPlan, DeriveSeedSeparatesStreams)
{
    EXPECT_EQ(Rng::deriveSeed(1, 7), Rng::deriveSeed(1, 7));
    EXPECT_NE(Rng::deriveSeed(1, 7), Rng::deriveSeed(1, 8));
    EXPECT_NE(Rng::deriveSeed(1, 7), Rng::deriveSeed(2, 7));
}

TEST(FaultApply, MemoryDataFlipsOneBit)
{
    const Program prog = loopProgram();
    ExecCore core(prog);
    FaultPlan plan;
    plan.target = FaultTarget::MemoryData;
    plan.pick = 0; // first data byte
    plan.bit = 3;
    const uint8_t before = core.memory().readByte(prog.dataBase);
    ASSERT_TRUE(applyFault(core, nullptr, prog, plan));
    EXPECT_EQ(core.memory().readByte(prog.dataBase), before ^ 0x08);
}

TEST(FaultApply, RegisterFileFlipsOneBit)
{
    const Program prog = loopProgram();
    ExecCore core(prog);
    core.setReg(5, 0x100);
    FaultPlan plan;
    plan.target = FaultTarget::RegisterFile;
    plan.pick = 5;
    plan.bit = 0;
    ASSERT_TRUE(applyFault(core, nullptr, prog, plan));
    EXPECT_EQ(core.reg(5), 0x101u);
}

TEST(FaultApply, InstructionWordFlipsTextInMemory)
{
    const Program prog = loopProgram();
    ExecCore core(prog);
    FaultPlan plan;
    plan.target = FaultTarget::InstructionWord;
    plan.pick = 2; // third text word
    plan.bit = 7;
    ASSERT_TRUE(applyFault(core, nullptr, prog, plan));
    EXPECT_EQ(core.memory().readWord(prog.textBase + 8),
              prog.text[2] ^ (1u << 7));
}

TEST(FaultApply, TableFaultsNeedAController)
{
    const Program prog = loopProgram();
    ExecCore core(prog);
    FaultPlan plan;
    plan.target = FaultTarget::PtEntry;
    EXPECT_FALSE(applyFault(core, nullptr, prog, plan));
    plan.target = FaultTarget::RtEntry;
    EXPECT_FALSE(applyFault(core, nullptr, prog, plan));
}

TEST(Campaign, SameSeedIsBitIdentical)
{
    const Program prog = loopProgram();
    const CampaignSetup setup = mfiSetup(prog);
    CampaignConfig config;
    config.seed = 7;
    config.trials = 15;
    config.targets = {FaultTarget::MemoryData, FaultTarget::RegisterFile,
                      FaultTarget::InstructionWord, FaultTarget::PtEntry,
                      FaultTarget::RtEntry};
    const CampaignResult a = runCampaign(setup, config);
    const CampaignResult b = runCampaign(setup, config);
    EXPECT_EQ(a.uncaughtExceptions, 0u);
    EXPECT_EQ(a.goldenDynInsts, b.goldenDynInsts);
    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (size_t i = 0; i < a.trials.size(); ++i) {
        EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << i;
        EXPECT_EQ(a.trials[i].parityDetections,
                  b.trials[i].parityDetections)
            << i;
        EXPECT_EQ(a.trials[i].plan.triggerAppInst,
                  b.trials[i].plan.triggerAppInst)
            << i;
    }
    EXPECT_EQ(a.counts, b.counts);
}

TEST(Campaign, DifferentSeedsDiffer)
{
    const Program prog = loopProgram();
    const CampaignSetup setup = mfiSetup(prog);
    CampaignConfig config;
    config.trials = 12;
    config.seed = 1;
    const CampaignResult a = runCampaign(setup, config);
    config.seed = 2;
    const CampaignResult b = runCampaign(setup, config);
    bool anyPlanDiffers = false;
    for (size_t i = 0; i < a.trials.size(); ++i) {
        anyPlanDiffers |= a.trials[i].plan.triggerAppInst !=
                              b.trials[i].plan.triggerAppInst ||
                          a.trials[i].plan.pick != b.trials[i].plan.pick;
    }
    EXPECT_TRUE(anyPlanDiffers);
}

/** Run @p core to completion (bounded); returns retired step count. */
uint64_t
drain(ExecCore &core, uint64_t cap = 100000)
{
    DynInst dyn;
    uint64_t steps = 0;
    while (steps < cap && core.step(dyn))
        ++steps;
    return steps;
}

TEST(Parity, FaultFreeRunsIdenticalWithParityOnOrOff)
{
    const Program prog = loopProgram();
    RunResult results[2];
    for (int parity = 0; parity < 2; ++parity) {
        auto controller = mfiController(prog, parity != 0);
        ExecCore core(prog, controller.get());
        initMfiRegisters(core, prog);
        results[parity] = core.run(100000);
    }
    EXPECT_EQ(results[0].outcome, results[1].outcome);
    EXPECT_EQ(results[0].exitCode, results[1].exitCode);
    EXPECT_EQ(results[0].output, results[1].output);
    EXPECT_EQ(results[0].dynInsts, results[1].dynInsts);
    EXPECT_EQ(results[0].appInsts, results[1].appInsts);
    EXPECT_EQ(results[0].diseInsts, results[1].diseInsts);
    EXPECT_EQ(results[0].expansions, results[1].expansions);
    EXPECT_EQ(results[0].acfDetections, results[1].acfDetections);
}

TEST(Parity, RtCorruptionDetectedAndRefilled)
{
    const Program prog = loopProgram();
    auto controller = mfiController(prog, /*parity=*/true);
    ExecCore core(prog, controller.get());
    initMfiRegisters(core, prog);
    drain(core, 40); // warm the tables
    ASSERT_TRUE(controller->engine().corruptReplacementEntry(0, 5));
    EXPECT_TRUE(controller->engine().hasCorruptEntries());
    drain(core);
    const RunResult &r = core.result();
    // Parity caught the entry, the controller re-faulted it, and the
    // program finished untouched.
    EXPECT_EQ(r.outcome, RunOutcome::Exit);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output, "780"); // sum 0..39
    EXPECT_EQ(controller->engine().stats().get("rt_parity_detected"), 1u);
    EXPECT_FALSE(controller->engine().hasCorruptEntries());
}

TEST(Parity, RtCorruptionWithoutParityGarblesExpansion)
{
    const Program prog = loopProgram();
    auto controller = mfiController(prog, /*parity=*/false);
    ExecCore core(prog, controller.get());
    initMfiRegisters(core, prog);
    drain(core, 40);
    ASSERT_TRUE(controller->engine().corruptReplacementEntry(0, 5));
    drain(core);
    EXPECT_EQ(controller->engine().stats().get("rt_parity_detected"), 0u);
    EXPECT_GE(controller->engine().stats().get("rt_garbage_expansions"),
              1u);
    // The entry stays corrupt until evicted: no silent healing.
    EXPECT_TRUE(controller->engine().hasCorruptEntries());
}

TEST(Parity, PtCorruptionDetectedAndRefilled)
{
    const Program prog = loopProgram();
    auto controller = mfiController(prog, /*parity=*/true);
    ExecCore core(prog, controller.get());
    initMfiRegisters(core, prog);
    drain(core, 40);
    ASSERT_TRUE(controller->engine().corruptPatternEntry(0));
    drain(core);
    const RunResult &r = core.result();
    EXPECT_EQ(r.outcome, RunOutcome::Exit);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output, "780");
    EXPECT_EQ(controller->engine().stats().get("pt_parity_detected"), 1u);
    EXPECT_FALSE(controller->engine().hasCorruptEntries());
}

TEST(Parity, PtCorruptionWithoutParityDropsExpansions)
{
    const Program prog = loopProgram();

    // Reference: expansions in a clean MFI run.
    auto cleanCtl = mfiController(prog, false);
    ExecCore clean(prog, cleanCtl.get());
    initMfiRegisters(clean, prog);
    const RunResult ref = clean.run(100000);

    auto controller = mfiController(prog, /*parity=*/false);
    ExecCore core(prog, controller.get());
    initMfiRegisters(core, prog);
    drain(core, 40);
    ASSERT_TRUE(controller->engine().corruptPatternEntry(0));
    drain(core);
    const RunResult &r = core.result();
    // Segment checks silently stop firing for the garbled pattern's
    // opcodes; the (clean) program still runs to the right answer —
    // exactly the unprotected window parity exists to close.
    EXPECT_EQ(r.outcome, RunOutcome::Exit);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output, ref.output);
    EXPECT_GE(controller->engine().stats().get("pt_silent_drops"), 1u);
    EXPECT_LT(r.expansions, ref.expansions);
}

// ---- Copy-on-write snapshots ----

/** Campaigns must classify identically with and without snapshots,
 *  at any worker count: snapshot restore is a pure state copy, so a
 *  restored suffix is bit-identical — counters, PT/RT residency,
 *  parity statistics — to a from-reset replay. */
TEST(Snapshot, CampaignMatchesFullReplayBitForBit)
{
    const Program prog = loopProgram();
    const CampaignSetup setup = mfiSetup(prog);
    CampaignConfig config;
    config.seed = 11;
    config.trials = 20;
    config.targets = {FaultTarget::MemoryData, FaultTarget::RegisterFile,
                      FaultTarget::InstructionWord, FaultTarget::PtEntry,
                      FaultTarget::RtEntry};

    config.useSnapshots = false;
    const CampaignResult full = runCampaign(setup, config);
    config.useSnapshots = true;
    const CampaignResult snap = runCampaign(setup, config);
    SimScheduler pool(4);
    const CampaignResult snapPar = runCampaign(setup, config, &pool);

    for (const CampaignResult *r : {&snap, &snapPar}) {
        EXPECT_EQ(r->uncaughtExceptions, 0u);
        ASSERT_EQ(r->trials.size(), full.trials.size());
        for (size_t i = 0; i < full.trials.size(); ++i) {
            EXPECT_EQ(r->trials[i].outcome, full.trials[i].outcome) << i;
            EXPECT_EQ(r->trials[i].parityDetections,
                      full.trials[i].parityDetections)
                << i;
        }
        EXPECT_EQ(r->counts, full.counts);
        EXPECT_EQ(r->injected, full.injected);
        EXPECT_EQ(r->parityDetected, full.parityDetected);
        EXPECT_EQ(r->parityRecovered, full.parityRecovered);
    }

    // The two modes' artifact entries differ only in the replay
    // section (and would differ in host timing, which campaignToJson
    // does not emit).
    Json fullJson = campaignToJson(full);
    Json snapJson = campaignToJson(snap);
    EXPECT_NE(fullJson.dump(), snapJson.dump());
    fullJson["replay"] = Json::object();
    snapJson["replay"] = Json::object();
    EXPECT_EQ(fullJson.dump(), snapJson.dump());

    // O(delta) accounting: full replay saves nothing by definition;
    // the snapshot campaign must both record savings and actually
    // execute less than full replay did.
    EXPECT_EQ(full.savedInsts, 0u);
    EXPECT_GT(snap.savedInsts, 0u);
    EXPECT_LT(snap.replayedInsts, full.replayedInsts);
    EXPECT_EQ(snap.replayedInsts + snap.savedInsts, full.replayedInsts);
    EXPECT_EQ(snapPar.replayedInsts, snap.replayedInsts);
    EXPECT_EQ(snapPar.savedInsts, snap.savedInsts);
}

/** Restoring a snapshot and finishing must equal an uninterrupted run
 *  in every architectural counter and engine statistic. */
TEST(Snapshot, RestoredRunMatchesUninterrupted)
{
    const Program prog = loopProgram();

    // Reference: uninterrupted MFI run.
    auto refCtl = mfiController(prog, true);
    ExecCore ref(prog, refCtl.get());
    initMfiRegisters(ref, prog);
    const RunResult refResult = ref.run(100000);
    ASSERT_EQ(refResult.outcome, RunOutcome::Exit);

    // Snapshot mid-run, keep running the original to completion.
    auto ctlA = mfiController(prog, true);
    ExecCore a(prog, ctlA.get());
    initMfiRegisters(a, prog);
    a.advanceToAppInst(50);
    ASSERT_TRUE(a.atAppBoundary());
    ASSERT_EQ(a.result().appInsts, 50u);
    SimSnapshot snap;
    a.saveSnapshot(snap);
    EXPECT_EQ(snap.appInsts, 50u);
    const RunResult aResult = a.run(100000);

    // Restore into a *used* core (decode/trace caches warm, different
    // point of execution) and finish.
    auto ctlB = mfiController(prog, true);
    ExecCore b(prog, ctlB.get());
    initMfiRegisters(b, prog);
    b.advanceToAppInst(90);
    b.restoreSnapshot(snap);
    EXPECT_EQ(b.result().appInsts, 50u);
    const RunResult bResult = b.run(100000);

    for (const RunResult *r : {&aResult, &bResult}) {
        EXPECT_EQ(r->outcome, refResult.outcome);
        EXPECT_EQ(r->exitCode, refResult.exitCode);
        EXPECT_EQ(r->output, refResult.output);
        EXPECT_EQ(r->dynInsts, refResult.dynInsts);
        EXPECT_EQ(r->appInsts, refResult.appInsts);
        EXPECT_EQ(r->diseInsts, refResult.diseInsts);
        EXPECT_EQ(r->expansions, refResult.expansions);
        EXPECT_EQ(r->acfDetections, refResult.acfDetections);
    }
    // Engine statistics revert with the snapshot too: the restored
    // core's engine ends exactly where the reference engine did.
    EXPECT_EQ(ctlB->engine().stats().get("expansions"),
              refCtl->engine().stats().get("expansions"));
    EXPECT_EQ(ctlB->engine().stats().get("inspected"),
              refCtl->engine().stats().get("inspected"));
}

/** One frozen snapshot restored into divergent cores: writes after the
 *  fork must not leak between forks or back into the snapshot. */
TEST(Snapshot, ForksAreIsolated)
{
    const Program prog = loopProgram();
    ExecCore core(prog, nullptr);
    core.advanceToAppInst(20);
    SimSnapshot snap;
    core.saveSnapshot(snap);
    const uint64_t snapSum = snap.memory.checksum(prog.dataBase, 8);

    ExecCore fork1(prog, nullptr);
    fork1.restoreSnapshot(snap);
    ExecCore fork2(prog, nullptr);
    fork2.restoreSnapshot(snap);
    fork1.memory().writeByte(prog.dataBase, 0xAA);
    fork2.memory().writeByte(prog.dataBase, 0x55);
    fork1.invalidateDecodeCache();
    fork2.invalidateDecodeCache();

    EXPECT_EQ(fork1.memory().readByte(prog.dataBase), 0xAA);
    EXPECT_EQ(fork2.memory().readByte(prog.dataBase), 0x55);
    EXPECT_EQ(snap.memory.checksum(prog.dataBase, 8), snapSum);

    // Each fork still finishes as a valid (now divergent) execution.
    const RunResult r1 = fork1.run(100000);
    const RunResult r2 = fork2.run(100000);
    EXPECT_EQ(r1.outcome, RunOutcome::Exit);
    EXPECT_EQ(r2.outcome, RunOutcome::Exit);
}

} // namespace
} // namespace dise
