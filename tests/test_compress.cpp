/**
 * @file
 * Code-compression tests: candidate rules, greedy selection, codeword
 * encoding, parameterized dictionary sharing, PC-relative branch
 * compression, size accounting for every Figure 7 design point, and
 * compress/decompress round-trip execution.
 */

#include <gtest/gtest.h>

#include "src/acf/compress.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/rng.hpp"
#include "src/dise/controller.hpp"
#include "src/sim/core.hpp"

namespace dise {
namespace {

/** Run a program (optionally compressed) and return the result. */
RunResult
runProgram(const Program &prog,
           std::shared_ptr<ProductionSet> dict = nullptr)
{
    DiseController controller;
    if (dict)
        controller.install(dict);
    ExecCore core(prog, dict ? &controller : nullptr);
    return core.run(1000000);
}

/** A program with a thrice-repeated 3-instruction idiom. */
Program
redundantProgram()
{
    std::string src = ".text\nmain:\n    laq buf, t5\n    li 0, t1\n";
    for (int i = 0; i < 3; ++i) {
        src += "    ldq t2, 0(t5)\n"
               "    addq t2, t1, t2\n"
               "    stq t2, 0(t5)\n";
        src += strFormat("    addq t1, %d, t1\n", i); // break repetition
    }
    src += "    mov t1, a0\n    li 2, v0\n    syscall\n"
           "    li 0, v0\n    li 0, a0\n    syscall\n"
           ".data\nbuf:\n    .quad 0\n";
    return assemble(src);
}

TEST(Compress, FindsRepeatedSequences)
{
    CompressorOptions opts;
    opts.maxParams = 0;
    opts.dictEntryBytes = 4;
    const auto result = compressProgram(redundantProgram(), opts);
    EXPECT_GE(result.dictEntries, 1u);
    EXPECT_GE(result.codewords, 3u);
    EXPECT_LT(result.compressedTextBytes, result.originalTextBytes);
}

TEST(Compress, RoundTripExecution)
{
    const Program prog = redundantProgram();
    const RunResult native = runProgram(prog);
    const auto result = compressProgram(prog);
    const RunResult comp = runProgram(result.compressed,
                                      result.dictionary);
    EXPECT_EQ(comp.output, native.output);
    EXPECT_EQ(comp.exitCode, native.exitCode);
    // Decompression recreates the original stream instruction for
    // instruction.
    EXPECT_EQ(comp.dynInsts, native.dynInsts);
}

TEST(Compress, ParameterizationUnifiesRegisterVariants)
{
    // The same idiom over three different register sets: without
    // parameters three entries (or none profitable), with parameters one
    // shared entry.
    std::string src = ".text\nmain:\n    laq buf, t5\n";
    const char *regs[3][2] = {{"t0", "t1"}, {"t2", "t3"}, {"t6", "t7"}};
    for (auto &r : regs) {
        src += strFormat("    ldq %s, 0(t5)\n", r[0]);
        src += strFormat("    addq %s, 1, %s\n", r[0], r[1]);
        src += strFormat("    stq %s, 0(t5)\n", r[1]);
        src += "    nop\n";
    }
    src += "    li 0, v0\n    li 0, a0\n    syscall\n"
           ".data\nbuf:\n    .quad 0\n";
    const Program prog = assemble(src);

    CompressorOptions withParams;
    withParams.maxParams = 3;
    const auto param = compressProgram(prog, withParams);
    CompressorOptions noParams;
    noParams.maxParams = 0;
    noParams.dictEntryBytes = 4;
    const auto exact = compressProgram(prog, noParams);

    EXPECT_GE(param.codewords, 3u);
    EXPECT_LT(param.dictEntries * 3u, param.codewords * 3u + 1);
    EXPECT_LT(param.compressedTextBytes, exact.compressedTextBytes);

    // And the parameterized image still runs correctly.
    const RunResult native = runProgram(prog);
    const RunResult comp =
        runProgram(param.compressed, param.dictionary);
    EXPECT_EQ(comp.output, native.output);
}

TEST(Compress, SmallImmediatesBecomeParameters)
{
    // Figure 4's lda +8 / lda -8 sharing one entry. All displacements
    // must fit the sign-extended 5-bit parameter range [-16, 15].
    std::string src = ".text\nmain:\n    laq buf, t5\n";
    for (const int d : {8, -8, -4}) {
        src += strFormat("    lda t0, %d(t0)\n", d);
        src += "    ldq t1, 0(t5)\n"
               "    addq t1, t0, t1\n"
               "    nop\n";
    }
    src += "    li 0, v0\n    li 0, a0\n    syscall\n"
           ".data\nbuf:\n    .quad 0\n";
    const Program prog = assemble(src);
    CompressorOptions opts;
    const auto result = compressProgram(prog, opts);
    EXPECT_GE(result.codewords, 3u);
    EXPECT_EQ(result.dictEntries, 1u);
    const RunResult native = runProgram(prog);
    const RunResult comp =
        runProgram(result.compressed, result.dictionary);
    EXPECT_EQ(comp.dynInsts, native.dynInsts);
}

TEST(Compress, BranchCompressionAdjustsOffsetsPerInstance)
{
    // Identical loop bodies ending in backward branches with (after
    // compression) different displacements: only offset
    // parameterization can share them.
    std::string src = ".text\nmain:\n";
    for (int l = 0; l < 3; ++l) {
        src += "    li 3, t0\n";
        src += strFormat("loop%d:\n", l);
        src += "    subq t0, 1, t0\n"
               "    addq t2, 2, t2\n"
               "    xor t2, t3, t3\n";
        src += strFormat("    bne t0, loop%d\n", l);
    }
    src += "    li 0, v0\n    li 0, a0\n    syscall\n";
    const Program prog = assemble(src);

    CompressorOptions opts;
    opts.compressBranches = true;
    const auto result = compressProgram(prog, opts);
    EXPECT_GE(result.codewords, 3u);
    const RunResult native = runProgram(prog);
    const RunResult comp =
        runProgram(result.compressed, result.dictionary);
    EXPECT_EQ(comp.exitCode, 0);
    EXPECT_EQ(comp.dynInsts, native.dynInsts);

    CompressorOptions noBranches;
    noBranches.compressBranches = false;
    const auto safe = compressProgram(prog, noBranches);
    // Branch-ending candidates are excluded entirely without offset
    // parameters (subq differs between the loops, so only the 2-inst
    // middle run repeats — too short to profit at 8-byte entries).
    EXPECT_GE(safe.compressedTextBytes, result.compressedTextBytes);
}

TEST(Compress, CandidatesNeverStraddleBasicBlocks)
{
    // A branch target in the middle of a repeated run must split it.
    std::string src = ".text\nmain:\n    li 2, t0\n";
    src += "    addq t1, 1, t1\n"
           "    addq t2, 1, t2\n"
           "mid:\n"
           "    addq t3, 1, t3\n"
           "    addq t4, 1, t4\n"
           "    subq t0, 1, t0\n"
           "    bne t0, mid\n"
           "    li 0, v0\n    li 0, a0\n    syscall\n";
    const Program prog = assemble(src);
    const auto result = compressProgram(prog);
    // Whatever was chosen, execution must be exact.
    const RunResult native = runProgram(prog);
    const RunResult comp =
        runProgram(result.compressed, result.dictionary);
    EXPECT_EQ(comp.dynInsts, native.dynInsts);
    EXPECT_EQ(comp.exitCode, 0);
}

TEST(Compress, DedicatedOptionsEnableSingleInstruction)
{
    // With 2-byte codewords a single instruction repeated often enough
    // is profitable.
    std::string src = ".text\nmain:\n";
    for (int i = 0; i < 6; ++i)
        src += "    mulq t0, t1, t2\n    nop\n";
    src += "    li 0, v0\n    li 0, a0\n    syscall\n";
    const Program prog = assemble(src);
    const auto result =
        compressProgram(prog, dedicatedDecompressorOptions());
    EXPECT_GE(result.codewords, 6u);
    // Accounting uses 2-byte codewords.
    EXPECT_LT(result.compressedTextBytes, result.originalTextBytes);
}

TEST(Compress, AccountingIsConsistent)
{
    const auto result = compressProgram(redundantProgram());
    const uint64_t residual =
        result.compressed.text.size() - result.codewords;
    EXPECT_EQ(result.compressedTextBytes,
              residual * 4 + result.codewords * 4);
    EXPECT_EQ(result.originalTextBytes,
              redundantProgram().textBytes());
    EXPECT_LE(result.ratio(), 1.0);
    EXPECT_GE(result.ratioWithDict(), result.ratio());
}

TEST(Compress, DictionarySizeRespectsEntryCost)
{
    CompressorOptions cheap;
    cheap.maxParams = 0;
    cheap.dictEntryBytes = 4;
    CompressorOptions costly = cheap;
    costly.dictEntryBytes = 8;
    const Program prog = redundantProgram();
    const auto a = compressProgram(prog, cheap);
    const auto b = compressProgram(prog, costly);
    if (a.dictEntries == b.dictEntries && a.dictEntries > 0) {
        EXPECT_EQ(b.dictionaryBytes, 2 * a.dictionaryBytes);
    } else {
        // Costlier entries admit fewer of them.
        EXPECT_LE(b.dictEntries, a.dictEntries);
    }
}

TEST(Compress, EmptyAndTinyProgramsSurvive)
{
    const Program tiny =
        assemble(".text\nmain:\n    li 0, v0\n    li 0, a0\n"
                 "    syscall\n");
    const auto result = compressProgram(tiny);
    const RunResult run =
        runProgram(result.compressed, result.dictionary);
    EXPECT_EQ(run.exitCode, 0);
}

TEST(Compress, SymbolsRemapIntoCompressedImage)
{
    const Program prog = redundantProgram();
    const auto result = compressProgram(prog);
    EXPECT_EQ(result.compressed.symbols.count("main"), 1u);
    EXPECT_TRUE(result.compressed.inText(result.compressed.entry) ||
                result.compressed.entry == result.compressed.textBase);
    EXPECT_EQ(result.compressed.symbol("buf"), prog.symbol("buf"));
}

TEST(Compress, TagSpaceIsBounded)
{
    CompressorOptions opts;
    opts.maxDictEntries = 4096; // exceeds the 11-bit tag space
    EXPECT_THROW(compressProgram(redundantProgram(), opts), PanicError);
}

/** Property: random straight-line register programs round-trip. */
class CompressProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CompressProperty, RandomProgramsRoundTrip)
{
    Rng rng(GetParam() * 104729 + 17);
    std::string src = ".text\nmain:\n    laq buf, t5\n";
    const char *ops[] = {"addq", "subq", "xor", "and", "or"};
    const int n = 30 + int(rng.below(60));
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.25)) {
            src += strFormat("    %s t%d, %d(t5)\n",
                             rng.chance(0.5) ? "ldq" : "stq",
                             int(rng.below(5)), int(rng.below(6)) * 8);
        } else if (rng.chance(0.1)) {
            src += strFormat("    blbs t%d, skip%d\n",
                             int(rng.below(5)), i);
            src += strFormat("    addq t0, 1, t0\nskip%d:\n", i);
        } else {
            src += strFormat("    %s t%d, %d, t%d\n",
                             ops[rng.below(5)], int(rng.below(5)),
                             int(rng.below(32)), int(rng.below(5)));
        }
    }
    src += "    mov t0, a0\n    li 2, v0\n    syscall\n"
           "    li 0, v0\n    li 0, a0\n    syscall\n"
           ".data\nbuf:\n    .space 64\n";
    const Program prog = assemble(src);
    const RunResult native = runProgram(prog);
    ASSERT_EQ(native.exitCode, 0);

    for (const bool branches : {true, false}) {
        for (const uint32_t params : {0u, 3u}) {
            CompressorOptions opts;
            opts.compressBranches = branches;
            opts.maxParams = params;
            const auto result = compressProgram(prog, opts);
            const RunResult comp =
                runProgram(result.compressed, result.dictionary);
            EXPECT_EQ(comp.output, native.output)
                << "branches=" << branches << " params=" << params;
            EXPECT_EQ(comp.dynInsts, native.dynInsts);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressProperty, ::testing::Range(0, 15));

} // namespace
} // namespace dise
