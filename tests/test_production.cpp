/**
 * @file
 * Production tests: pattern matching and specificity, most-specific
 * match arbitration (overlapping/negative patterns), explicit tagging,
 * the instantiation logic's directives, and production-set merging.
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/dise/production.hpp"

namespace dise {
namespace {

DecodedInst
load(RegIndex dest, RegIndex base, int64_t disp)
{
    return decode(makeMemory(Opcode::LDQ, dest, base, disp));
}

TEST(Pattern, OpcodeMatch)
{
    PatternSpec pattern;
    pattern.opcode = Opcode::LDQ;
    EXPECT_TRUE(pattern.matches(load(1, 2, 0)));
    EXPECT_FALSE(pattern.matches(decode(makeMemory(Opcode::LDL, 1, 2, 0))));
}

TEST(Pattern, ClassMatch)
{
    PatternSpec pattern;
    pattern.opclass = OpClass::Load;
    EXPECT_TRUE(pattern.matches(load(1, 2, 0)));
    EXPECT_TRUE(pattern.matches(decode(makeMemory(Opcode::LDBU, 1, 2, 0))));
    EXPECT_FALSE(pattern.matches(decode(makeMemory(Opcode::STQ, 1, 2, 0))));
    EXPECT_FALSE(pattern.matches(decode(makeMemory(Opcode::LDA, 1, 2, 0))));
}

TEST(Pattern, RoleRegisterMatch)
{
    // "loads that use the stack pointer as their address register"
    PatternSpec pattern;
    pattern.opclass = OpClass::Load;
    pattern.rs = kSpReg;
    EXPECT_TRUE(pattern.matches(load(1, kSpReg, 8)));
    EXPECT_FALSE(pattern.matches(load(1, 7, 8)));
}

TEST(Pattern, ImmediateValueAndSign)
{
    // "conditional branches with negative offsets"
    PatternSpec pattern;
    pattern.opclass = OpClass::CondBranch;
    pattern.immSign = SignConstraint::Negative;
    EXPECT_TRUE(pattern.matches(decode(makeBranch(Opcode::BNE, 1, -5))));
    EXPECT_FALSE(pattern.matches(decode(makeBranch(Opcode::BNE, 1, 5))));

    PatternSpec exact;
    exact.immValue = 8;
    EXPECT_TRUE(exact.matches(load(1, 2, 8)));
    EXPECT_FALSE(exact.matches(load(1, 2, 16)));
}

TEST(Pattern, InvalidNeverMatches)
{
    PatternSpec any;
    DecodedInst bad = decode(static_cast<Word>(0x3fu << 26));
    EXPECT_FALSE(any.matches(bad));
}

TEST(Pattern, Specificity)
{
    PatternSpec byClass;
    byClass.opclass = OpClass::Load;
    PatternSpec byOpcode;
    byOpcode.opcode = Opcode::LDQ;
    PatternSpec byClassAndReg = byClass;
    byClassAndReg.rs = kSpReg;
    EXPECT_LT(byClass.specificity(), byOpcode.specificity());
    EXPECT_LT(byOpcode.specificity(), byClassAndReg.specificity() + 6);
    EXPECT_GT(byClassAndReg.specificity(), byClass.specificity());
}

TEST(Pattern, CoveredOpcodes)
{
    PatternSpec byOpcode;
    byOpcode.opcode = Opcode::STQ;
    EXPECT_EQ(byOpcode.coveredOpcodes(),
              std::vector<Opcode>{Opcode::STQ});
    PatternSpec byClass;
    byClass.opclass = OpClass::Store;
    const auto covered = byClass.coveredOpcodes();
    EXPECT_EQ(covered.size(), 3u); // stb, stl, stq
}

ReplacementSeq
identitySeq(const std::string &name)
{
    ReplacementSeq seq;
    seq.name = name;
    seq.insts.push_back(rTriggerInsn());
    return seq;
}

TEST(ProductionSet, MostSpecificWins)
{
    // Negative specification: "all loads that don't use sp" — the
    // sp-specific pattern performs the identity expansion.
    ProductionSet set;
    const SeqId identity = set.addSequence(identitySeq("ID"));
    ReplacementSeq work = identitySeq("WORK");
    work.insts.push_back(rTriggerInsn()); // distinguishable length
    const SeqId workId = set.addSequence(work);

    PatternSpec spLoads;
    spLoads.opclass = OpClass::Load;
    spLoads.rs = kSpReg;
    set.addPattern(spLoads, identity);
    PatternSpec allLoads;
    allLoads.opclass = OpClass::Load;
    set.addPattern(allLoads, workId);

    EXPECT_EQ(*set.match(load(1, kSpReg, 0)), identity);
    EXPECT_EQ(*set.match(load(1, 7, 0)), workId);
    EXPECT_FALSE(set.match(decode(makeNop())).has_value());
}

TEST(ProductionSet, TieBreaksTowardEarliestPattern)
{
    ProductionSet set;
    const SeqId a = set.addSequence(identitySeq("A"));
    const SeqId b = set.addSequence(identitySeq("B"));
    PatternSpec loads;
    loads.opclass = OpClass::Load;
    set.addPattern(loads, a);
    set.addPattern(loads, b);
    EXPECT_EQ(*set.match(load(1, 2, 0)), a);
}

TEST(ProductionSet, ExplicitTagging)
{
    ProductionSet set;
    set.addSequenceWithId(100 + 5, identitySeq("T5"));
    set.addSequenceWithId(100 + 9, identitySeq("T9"));
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    set.addTagPattern(cw, 100);

    const DecodedInst t5 = decode(makeCodeword(Opcode::RES0, 5, 0, 0, 0));
    const DecodedInst t9 = decode(makeCodeword(Opcode::RES0, 9, 0, 0, 0));
    EXPECT_EQ(*set.match(t5), 105u);
    EXPECT_EQ(*set.match(t9), 109u);
    EXPECT_NE(set.sequence(105), nullptr);
    EXPECT_EQ(set.sequence(106), nullptr);
}

TEST(ProductionSet, MergeRemapsIds)
{
    ProductionSet a, b;
    PatternSpec loads;
    loads.opclass = OpClass::Load;
    a.addPattern(loads, a.addSequence(identitySeq("A")));
    PatternSpec stores;
    stores.opclass = OpClass::Store;
    b.addPattern(stores, b.addSequence(identitySeq("B")));

    ProductionSet merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.productions().size(), 2u);
    const auto loadSeq = merged.match(load(1, 2, 0));
    const auto storeSeq =
        merged.match(decode(makeMemory(Opcode::STQ, 1, 2, 0)));
    ASSERT_TRUE(loadSeq && storeSeq);
    EXPECT_NE(*loadSeq, *storeSeq);
    EXPECT_NE(merged.sequence(*loadSeq), nullptr);
    EXPECT_NE(merged.sequence(*storeSeq), nullptr);
}

TEST(ProductionSet, MergePreservesTagArithmetic)
{
    ProductionSet tagged;
    tagged.addSequenceWithId(3, identitySeq("T3"));
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    tagged.addTagPattern(cw, 0);

    ProductionSet merged;
    merged.merge(tagged);
    const DecodedInst t3 = decode(makeCodeword(Opcode::RES0, 3, 0, 0, 0));
    const auto id = merged.match(t3);
    ASSERT_TRUE(id.has_value());
    EXPECT_NE(merged.sequence(*id), nullptr);
}

TEST(ProductionSet, TotalReplacementInsts)
{
    ProductionSet set;
    ReplacementSeq seq = identitySeq("X");
    seq.insts.push_back(rTriggerInsn());
    set.addSequence(seq);
    set.addSequence(identitySeq("Y"));
    EXPECT_EQ(set.totalReplacementInsts(), 3u);
}

// ---- Instantiation logic. ----

TEST(Instantiate, TriggerInsnIsTheTrigger)
{
    const DecodedInst trigger = load(5, 9, 24);
    const DecodedInst out = instantiate(rTriggerInsn(), trigger, 0x4000);
    EXPECT_EQ(out, trigger);
}

TEST(Instantiate, RegisterDirectives)
{
    // srl T.RS, #26, $dr1 applied to "stq a0, 16(t0)" (Figure 1).
    ReplacementInst rinst;
    rinst.templ.op = Opcode::SRL;
    rinst.templ.cls = OpClass::IntAlu;
    rinst.templ.useLit = true;
    rinst.templ.imm = 26;
    rinst.templ.rc = kDiseRegBase + 1;
    rinst.raDir = RegDirective::TriggerRS;

    const DecodedInst trigger = decode(makeMemory(Opcode::STQ, 16, 1, 16));
    const DecodedInst out = instantiate(rinst, trigger, 0x4000);
    EXPECT_EQ(out.op, Opcode::SRL);
    EXPECT_EQ(out.ra, 1); // t0, the store's address register
    EXPECT_EQ(out.imm, 26);
    EXPECT_EQ(out.rc, kDiseRegBase + 1);
}

TEST(Instantiate, AllTriggerRoles)
{
    ReplacementInst rinst;
    rinst.templ.op = Opcode::ADDQ;
    rinst.templ.cls = OpClass::IntAlu;
    rinst.raDir = RegDirective::TriggerRS;
    rinst.rbDir = RegDirective::TriggerRT;
    rinst.rcDir = RegDirective::TriggerRD;
    const DecodedInst trigger = decode(makeOperate(Opcode::XOR, 3, 4, 5));
    const DecodedInst out = instantiate(rinst, trigger, 0);
    EXPECT_EQ(out.ra, 3);
    EXPECT_EQ(out.rb, 4);
    EXPECT_EQ(out.rc, 5);
}

TEST(Instantiate, TriggerImmAndPC)
{
    ReplacementInst rinst;
    rinst.templ.op = Opcode::LDA;
    rinst.templ.cls = OpClass::IntAlu;
    rinst.immDir = ImmDirective::TriggerImm;
    const DecodedInst trigger = load(1, 2, -48);
    EXPECT_EQ(instantiate(rinst, trigger, 0x4000).imm, -48);

    rinst.immDir = ImmDirective::TriggerPC;
    EXPECT_EQ(instantiate(rinst, trigger, 0x4000).imm, 0x4000);
}

TEST(Instantiate, CodewordRegisterParams)
{
    ReplacementInst rinst;
    rinst.templ.op = Opcode::ADDQ;
    rinst.templ.cls = OpClass::IntAlu;
    rinst.raDir = RegDirective::Param1;
    rinst.rbDir = RegDirective::Param2;
    rinst.rcDir = RegDirective::Param3;
    const DecodedInst cw =
        decode(makeCodeword(Opcode::RES0, 7, 10, 20, 30));
    const DecodedInst out = instantiate(rinst, cw, 0);
    EXPECT_EQ(out.ra, 10);
    EXPECT_EQ(out.rb, 20);
    EXPECT_EQ(out.rc, 30);
}

TEST(Instantiate, CodewordImmediateParamsSignExtend)
{
    ReplacementInst rinst;
    rinst.templ.op = Opcode::LDA;
    rinst.templ.cls = OpClass::IntAlu;
    rinst.immDir = ImmDirective::Param2;
    // Parameter value 0x18 = -8 as a signed 5-bit value (Figure 4).
    const DecodedInst cw =
        decode(makeCodeword(Opcode::RES0, 7, 0, 0x18, 0));
    EXPECT_EQ(instantiate(rinst, cw, 0).imm, -8);
}

TEST(Instantiate, ParamImm15)
{
    ReplacementInst rinst;
    rinst.templ.op = Opcode::BNE;
    rinst.templ.cls = OpClass::CondBranch;
    rinst.immDir = ImmDirective::ParamImm;
    const DecodedInst cw = decode(makeCodewordImm(Opcode::RES0, 7, -129));
    EXPECT_EQ(instantiate(rinst, cw, 0).imm, -129);
}

TEST(Instantiate, AbsTargetBecomesRelative)
{
    // beq $dr1, @error with the trigger fetched at 0x4000200.
    ReplacementInst rinst;
    rinst.templ.op = Opcode::BEQ;
    rinst.templ.cls = OpClass::CondBranch;
    rinst.templ.ra = kDiseRegBase + 1;
    rinst.templ.imm = 0x4000300; // absolute error handler
    rinst.immDir = ImmDirective::AbsTarget;
    const DecodedInst trigger = load(1, 2, 0);
    const DecodedInst out = instantiate(rinst, trigger, 0x4000200);
    EXPECT_EQ(out.branchTarget(0x4000200), 0x4000300u);
}

TEST(Instantiate, SequenceInstantiation)
{
    ReplacementSeq seq;
    seq.name = "R";
    ReplacementInst first;
    first.templ.op = Opcode::SRL;
    first.templ.cls = OpClass::IntAlu;
    first.templ.useLit = true;
    first.templ.imm = 26;
    first.raDir = RegDirective::TriggerRS;
    seq.insts.push_back(first);
    seq.insts.push_back(rTriggerInsn());

    const DecodedInst trigger = load(3, 7, 8);
    const auto out = instantiateSeq(seq, trigger, 0x4000);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].ra, 7);
    EXPECT_EQ(out[1], trigger);
}

TEST(Display, PatternAndReplacementToString)
{
    PatternSpec pattern;
    pattern.opclass = OpClass::Store;
    pattern.rs = kSpReg;
    EXPECT_EQ(pattern.toString(), "class == store && rs == sp");

    ReplacementInst rinst;
    rinst.templ.op = Opcode::SRL;
    rinst.templ.cls = OpClass::IntAlu;
    rinst.templ.useLit = true;
    rinst.templ.imm = 26;
    rinst.templ.rc = kDiseRegBase + 1;
    rinst.raDir = RegDirective::TriggerRS;
    EXPECT_EQ(rinst.toString(), "srl T.RS, #26, $dr1");
    EXPECT_EQ(rTriggerInsn().toString(), "T.INSN");
}

} // namespace
} // namespace dise
