/**
 * @file
 * Composition tests: nested composition (Figure 5 left), non-nested
 * merging (Figure 5 right), dedicated-register renaming, composed-fill
 * flags, and the end-to-end property that composeNested(Y, X) executes
 * exactly Y(X(application)).
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/acf/compose.hpp"
#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/tracing.hpp"
#include "src/assembler/assembler.hpp"
#include "src/dise/parser.hpp"
#include "src/sim/core.hpp"

namespace dise {
namespace {

Program
storeProgram()
{
    return assemble(".text\n"
                    "main:\n"
                    "    laq buf, t5\n"
                    "    li 7, t0\n"
                    "    stq t0, 8(t5)\n"
                    "    stq t0, 16(t5)\n"
                    "    li 0, v0\n    li 0, a0\n    syscall\n"
                    "error:\n"
                    "    li 0, v0\n    li 42, a0\n    syscall\n"
                    ".data\n"
                    "buf:\n    .space 64\n"
                    "trace:\n    .space 256\n");
}

TEST(Compose, Figure5NestedTracingWithinMfi)
{
    // Fault-isolate traced code: MFI applied over tracing.
    const Program prog = storeProgram();
    MfiOptions mopts;
    mopts.checkJumps = false;
    const ProductionSet mfi = makeMfiProductions(prog, mopts);
    const ProductionSet tracing = makeTracingProductions();

    const ProductionSet composed = composeNested(mfi, tracing);
    // The composed store production: tracing's sequence with both of its
    // stores (the trace append and T.INSN) wrapped in MFI checks:
    // lda + (3 MFI + stq) + lda + (3 MFI + T.INSN) = 10 instructions.
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    const auto id = composed.match(st);
    ASSERT_TRUE(id.has_value());
    const ReplacementSeq *seq = composed.sequence(*id);
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(seq->length(), 10u);

    // Functional equivalence: both trace entries written AND checked.
    DiseController controller;
    controller.install(
        std::make_shared<ProductionSet>(composed));
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    initTracingRegisters(core, prog.symbol("trace"));
    const RunResult result = core.run(10000);
    EXPECT_EQ(result.exitCode, 0);
    const Addr trace = prog.symbol("trace");
    EXPECT_EQ(core.memory().readQuad(trace), prog.symbol("buf") + 8);
    EXPECT_EQ(core.memory().readQuad(trace + 8), prog.symbol("buf") + 16);
    EXPECT_EQ(core.diseRegs()[5], trace + 16);
}

TEST(Compose, NestedCompositionCatchesViolationsInAcfCode)
{
    // When tracing is nested within MFI, even the *tracing* stores are
    // checked: pointing the trace cursor outside the data segment traps.
    const Program prog = storeProgram();
    MfiOptions mopts;
    mopts.checkJumps = false;
    const ProductionSet composed = composeNested(
        makeMfiProductions(prog, mopts), makeTracingProductions());
    DiseController controller;
    controller.install(std::make_shared<ProductionSet>(composed));
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    initTracingRegisters(core, prog.textBase); // illegal trace buffer
    EXPECT_EQ(core.run(10000).exitCode, 42);
}

TEST(Compose, MergedTracesWithoutCheckingTraceStores)
{
    // Figure 5 right: non-nested composition traces and fault-isolates
    // application stores but not the tracing stores.
    const Program prog = storeProgram();
    MfiOptions mopts;
    mopts.checkJumps = false;
    const ProductionSet merged = composeMerged(
        makeTracingProductions(), makeMfiProductions(prog, mopts));

    // Merged store sequence: 3 tracing + 3 MFI + one shared T.INSN = 7.
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    const auto id = merged.match(st);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(merged.sequence(*id)->length(), 7u);

    // An out-of-segment trace cursor is NOT caught (tracing stores are
    // unchecked), yet application stores still are.
    DiseController controller;
    controller.install(std::make_shared<ProductionSet>(merged));
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    initTracingRegisters(core, prog.symbol("trace"));
    const RunResult result = core.run(10000);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(core.memory().readQuad(prog.symbol("trace")),
              prog.symbol("buf") + 8);

    // Load production from MFI survives unmerged.
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    EXPECT_TRUE(merged.match(ld).has_value());
}

TEST(Compose, MergeRequiresTrailingTriggers)
{
    ProductionSet a = parseProductions("P1: class == load -> R1\n"
                                       "R1: T.INSN\n"
                                       "    lda $dr1, 1($dr1)\n");
    ProductionSet b = parseProductions("P1: class == load -> R2\n"
                                       "R2: T.INSN\n");
    EXPECT_THROW(composeMerged(a, b), FatalError);
}

TEST(Compose, MergeKeepsDisjointProductions)
{
    ProductionSet a = parseProductions("P1: class == load -> R1\n"
                                       "R1: T.INSN\n");
    ProductionSet b = parseProductions("P1: class == store -> R2\n"
                                       "R2: T.INSN\n");
    const ProductionSet merged = composeMerged(a, b);
    EXPECT_EQ(merged.productions().size(), 2u);
}

TEST(Compose, DedicatedScratchRenamedOnCollision)
{
    // Outer uses $dr1 as scratch; inner also uses $dr1 as a live value.
    ProductionSet outer =
        parseProductions("P1: class == store -> R1\n"
                         "R1: srl T.RS, #26, $dr1\n"
                         "    beq $dr1, @0x4000f00\n"
                         "    T.INSN\n");
    ProductionSet inner =
        parseProductions("P1: class == load -> R2\n"
                         "R2: stq $dr1, 0($dr2)\n"
                         "    T.INSN\n");
    const ProductionSet composed = composeNested(outer, inner);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const auto id = composed.match(ld);
    ASSERT_TRUE(id.has_value());
    const ReplacementSeq *seq = composed.sequence(*id);
    // Inlined MFI-like check around the inner store must NOT clobber the
    // inner's $dr1.
    for (const auto &rinst : seq->insts) {
        if (rinst.isTriggerInsn)
            continue;
        if (rinst.templ.op == Opcode::SRL) {
            EXPECT_NE(rinst.templ.rc, kDiseRegBase + 1);
        }
    }
}

TEST(Compose, ComposedSequencesCarryMissHandlerFlag)
{
    // Synthetic aware dictionary with one entry containing a store.
    ProductionSet dict;
    ReplacementSeq entry;
    entry.name = "D0";
    entry.insts.push_back(
        rLiteral(decode(makeMemory(Opcode::STQ, 1, 2, 0))));
    entry.insts.push_back(
        rLiteral(decode(makeOperate(Opcode::ADDQ, 1, 2, 3))));
    dict.addSequenceWithId(0, entry);
    PatternSpec cw;
    cw.opcode = Opcode::RES0;
    dict.addTagPattern(cw, 0);

    const Program prog = storeProgram();
    MfiOptions mopts;
    ComposeOptions copts;
    copts.viaMissHandler = true;
    const ProductionSet composed =
        composeNested(makeMfiProductions(prog, mopts), dict, copts);

    const DecodedInst trigger =
        decode(makeCodeword(Opcode::RES0, 0, 0, 0, 0));
    const auto id = composed.match(trigger);
    ASSERT_TRUE(id.has_value());
    const ReplacementSeq *seq = composed.sequence(*id);
    ASSERT_NE(seq, nullptr);
    EXPECT_TRUE(seq->composeOnFill);
    // MFI was inlined around the entry's store: 3 + 1 + 1 = 5 slots.
    EXPECT_EQ(seq->length(), 5u);
}

TEST(Compose, SamePatternHelper)
{
    PatternSpec a, b;
    a.opclass = OpClass::Load;
    b.opclass = OpClass::Load;
    EXPECT_TRUE(samePattern(a, b));
    b.rs = kSpReg;
    EXPECT_FALSE(samePattern(a, b));
}

/**
 * End-to-end property: composing MFI over the decompression dictionary
 * and running the compressed image retires exactly the same stream as
 * running MFI over the uncompressed program.
 */
TEST(Compose, EqualsFunctionalCompositionOnRealWorkload)
{
    const Program prog = storeProgram();
    MfiOptions mopts;
    const ProductionSet mfi = makeMfiProductions(prog, mopts);

    DiseController refCtl;
    refCtl.install(std::make_shared<ProductionSet>(mfi));
    ExecCore ref(prog, &refCtl);
    initMfiRegisters(ref, prog);
    const RunResult rres = ref.run(100000);

    const auto comp = compressProgram(prog);
    ComposeOptions copts;
    copts.viaMissHandler = true;
    const ProductionSet composed =
        composeNested(mfi, *comp.dictionary, copts);
    DiseController ctl;
    ctl.install(std::make_shared<ProductionSet>(composed));
    ExecCore core(comp.compressed, &ctl);
    initMfiRegisters(core, prog);
    const RunResult cres = core.run(100000);

    EXPECT_EQ(cres.output, rres.output);
    EXPECT_EQ(cres.exitCode, rres.exitCode);
    EXPECT_EQ(cres.dynInsts, rres.dynInsts);
}

TEST(Compose, SandboxComposesOverDictionaries)
{
    // The sandboxing variant re-emits triggers via T.OP/T.RAW; its
    // composition over a decompression dictionary must rewrite the
    // dictionary's memory instructions into masked-base form and behave
    // exactly like sandboxing the uncompressed program.
    const Program prog = storeProgram();
    MfiOptions mopts;
    mopts.variant = MfiVariant::Sandbox;
    const ProductionSet sandbox = makeMfiProductions(prog, mopts);

    DiseController refCtl;
    refCtl.install(std::make_shared<ProductionSet>(sandbox));
    ExecCore ref(prog, &refCtl);
    initMfiRegisters(ref, prog);
    const RunResult rres = ref.run(100000);
    ASSERT_EQ(rres.exitCode, 0);

    const auto comp = compressProgram(prog);
    const ProductionSet composed =
        composeNested(sandbox, *comp.dictionary);
    DiseController ctl;
    ctl.install(std::make_shared<ProductionSet>(composed));
    ExecCore core(comp.compressed, &ctl);
    initMfiRegisters(core, prog);
    const RunResult cres = core.run(100000);
    EXPECT_EQ(cres.output, rres.output);
    EXPECT_EQ(cres.dynInsts, rres.dynInsts);
}

TEST(Compose, TagBlockCompositionPreservesTagLookup)
{
    // A program with enough redundancy to yield several dictionary
    // entries.
    std::string src = ".text\nmain:\n    laq buf, t5\n";
    for (int i = 0; i < 4; ++i) {
        src += "    ldq t0, 0(t5)\n    addq t0, 3, t0\n"
               "    stq t0, 0(t5)\n    nop\n";
        src += "    ldq t1, 8(t5)\n    xor t1, t0, t1\n"
               "    stq t1, 8(t5)\n    nop\n";
    }
    src += "    li 0, v0\n    li 0, a0\n    syscall\n"
           "error:\n    li 0, v0\n    li 42, a0\n    syscall\n"
           ".data\nbuf:\n    .space 64\n";
    const Program prog = assemble(src);
    const auto comp = compressProgram(prog);
    ASSERT_GT(comp.dictEntries, 0u);
    MfiOptions mopts;
    const ProductionSet composed = composeNested(
        makeMfiProductions(prog, mopts), *comp.dictionary);
    // Every original tag must still resolve through the composed set.
    for (uint32_t tag = 0; tag < comp.dictEntries; ++tag) {
        const DecodedInst cw = decode(
            makeCodeword(Opcode::RES0, static_cast<uint16_t>(tag), 0, 0,
                         0));
        const auto id = composed.match(cw);
        ASSERT_TRUE(id.has_value()) << tag;
        EXPECT_NE(composed.sequence(*id), nullptr) << tag;
    }
}

} // namespace
} // namespace dise
