/**
 * @file
 * Timing-model tests: basic cycle accounting, bandwidth and dependence
 * limits, cache and mispredict penalties, machine-width and cache-size
 * scaling, the three DISE engine placements, and PT/RT fill stalls.
 */

#include <gtest/gtest.h>

#include "src/acf/mfi.hpp"
#include "src/common/logging.hpp"
#include "src/assembler/assembler.hpp"
#include "src/dise/parser.hpp"
#include "src/pipeline/pipeline.hpp"

namespace dise {
namespace {

const char *kEpilogue = "    li 0, v0\n    li 0, a0\n    syscall\n"
                        "error:\n"
                        "    li 0, v0\n    li 42, a0\n    syscall\n";

Program
loopProgram(int iters, const std::string &body)
{
    return assemble(strFormat(".text\nmain:\n    li %d, t0\n", iters) +
                    "loop:\n" + body +
                    "    subq t0, 1, t0\n"
                    "    bne t0, loop\n" +
                    kEpilogue);
}

TimingResult
runTiming(const Program &prog, PipelineParams params = {},
          DiseController *controller = nullptr)
{
    PipelineSim sim(prog, params, controller);
    if (controller)
        initMfiRegisters(sim.core(), prog);
    return sim.run();
}

TEST(Pipeline, CyclesScaleWithInstructions)
{
    // Cold-start effects dominate tiny runs, so compare 100 vs 4000
    // iterations and only require rough proportionality.
    const auto small = runTiming(loopProgram(100, "    nop\n"));
    const auto large = runTiming(loopProgram(4000, "    nop\n"));
    EXPECT_GT(large.cycles, small.cycles * 10);
    EXPECT_TRUE(large.arch.exited);
}

TEST(Pipeline, IpcBoundedByWidth)
{
    const auto result = runTiming(
        loopProgram(2000, "    addq t1, 1, t1\n    addq t2, 1, t2\n"));
    EXPECT_LE(result.ipc(), 4.0);
    EXPECT_GT(result.ipc(), 0.5);
}

TEST(Pipeline, DependenceChainsLimitIpc)
{
    // Eight independent adds vs eight chained adds.
    std::string indep, chained;
    for (int i = 0; i < 8; ++i) {
        indep += strFormat("    addq t%d, 1, t%d\n", i % 4 + 1,
                           i % 4 + 1);
        chained += "    addq t1, 1, t1\n";
    }
    // Make the independent ones truly independent.
    indep = "    addq t1, 1, t1\n    addq t2, 1, t2\n"
            "    addq t3, 1, t3\n    addq t4, 1, t4\n"
            "    addq t5, 1, t5\n    addq t6, 1, t6\n"
            "    addq t7, 1, t7\n    addq t8, 1, t8\n";
    const auto fast = runTiming(loopProgram(2000, indep));
    const auto slow = runTiming(loopProgram(2000, chained));
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(Pipeline, MultiplyLatencyCosts)
{
    const auto add =
        runTiming(loopProgram(2000, "    addq t1, 1, t1\n"));
    const auto mul =
        runTiming(loopProgram(2000, "    mulq t1, 1, t1\n"));
    EXPECT_GT(mul.cycles, add.cycles);
}

TEST(Pipeline, WidthScalingHelpsParallelCode)
{
    const std::string body =
        "    addq t1, 1, t1\n    addq t2, 1, t2\n"
        "    addq t3, 1, t3\n    addq t4, 1, t4\n";
    PipelineParams narrow;
    narrow.width = 1;
    PipelineParams wide;
    wide.width = 8;
    const auto n = runTiming(loopProgram(2000, body), narrow);
    const auto w = runTiming(loopProgram(2000, body), wide);
    EXPECT_GT(double(n.cycles) / double(w.cycles), 1.8);
}

TEST(Pipeline, MispredictsCostCycles)
{
    // A data-dependent unpredictable branch pattern (xorshift-driven;
    // an LCG's low bit alternates and gshare would learn it) vs a fixed
    // one. The loop program seeds t1 via an earlier li in the body.
    const char *flaky =
        "    bne t1, seeded\n"
        "    li 88675123, t1\n"
        "seeded:\n"
        "    sll t1, 13, t4\n"
        "    xor t1, t4, t1\n"
        "    srl t1, 7, t4\n"
        "    xor t1, t4, t1\n"
        "    sll t1, 17, t4\n"
        "    xor t1, t4, t1\n"
        "    blbs t1, skip\n"
        "    addq t2, 1, t2\n"
        "skip:\n";
    const char *steady = "    blbs zero, skip\n"
                         "    addq t2, 1, t2\n"
                         "skip:\n";
    const auto f = runTiming(loopProgram(3000, flaky));
    const auto s = runTiming(loopProgram(3000, steady));
    EXPECT_GT(f.mispredicts, s.mispredicts + 500);
}

TEST(Pipeline, ICacheMissesStallFetch)
{
    // A code footprint larger than a tiny I-cache, looped.
    std::string big = ".text\nmain:\n    li 30, t0\nloop:\n";
    for (int i = 0; i < 2048; ++i)
        big += "    addq t1, 1, t1\n";
    big += "    subq t0, 1, t0\n    bne t0, loop\n";
    big += kEpilogue;
    const Program prog = assemble(big);
    PipelineParams tiny;
    tiny.mem.l1iSize = 2 * 1024;
    PipelineParams fits;
    fits.mem.l1iSize = 64 * 1024;
    const auto t = runTiming(prog, tiny);
    const auto f = runTiming(prog, fits);
    EXPECT_GT(t.icacheMisses, f.icacheMisses * 4);
    EXPECT_GT(t.cycles, f.cycles);
}

TEST(Pipeline, PerfectICacheConfigWorks)
{
    PipelineParams params;
    params.mem.l1iSize = 0;
    const auto result =
        runTiming(loopProgram(500, "    addq t1, 1, t1\n"), params);
    EXPECT_EQ(result.icacheMisses, 0u);
}

TEST(Pipeline, DCacheMissesSlowLoads)
{
    // Stride through 1MB: every load misses a 32KB D-cache.
    const Program prog = assemble(
        ".text\nmain:\n"
        "    laq arr, t5\n"
        "    li 4000, t0\n"
        "loop:\n"
        "    ldq t1, 0(t5)\n"
        "    lda t5, 256(t5)\n"
        "    subq t0, 1, t0\n"
        "    bne t0, loop\n" +
        std::string(kEpilogue) + ".data\narr:\n    .space 1048576\n");
    const auto result = runTiming(prog);
    EXPECT_GT(result.dcacheMisses, 3000u);
    const auto denseProg = assemble(
        ".text\nmain:\n"
        "    laq arr, t5\n"
        "    li 4000, t0\n"
        "loop:\n"
        "    ldq t1, 0(t5)\n"
        "    subq t0, 1, t0\n"
        "    bne t0, loop\n" +
        std::string(kEpilogue) + ".data\narr:\n    .space 1048576\n");
    const auto dense = runTiming(denseProg);
    EXPECT_GT(result.cycles, dense.cycles);
}

TEST(Pipeline, RobOccupancyLimitsMemoryParallelism)
{
    // A stream of independent missing loads: a large ROB overlaps many
    // misses; a tiny ROB serializes them.
    std::string src = ".text\nmain:\n    laq arr, t5\n    li 500, t0\n"
                      "    li 32768, t7\n"
                      "loop:\n";
    for (int i = 0; i < 8; ++i)
        src += strFormat("    ldq t%d, %d(t5)\n", i % 4 + 1, i * 4096);
    src += "    addq t5, t7, t5\n"
           "    subq t0, 1, t0\n"
           "    bne t0, loop\n";
    src += kEpilogue;
    src += ".data\narr:\n    .space 16777216\n";
    const Program prog = assemble(src);
    PipelineParams big;
    big.robEntries = 128;
    PipelineParams tiny;
    tiny.robEntries = 8;
    tiny.rsEntries = 8;
    const auto b = runTiming(prog, big);
    const auto t = runTiming(prog, tiny);
    EXPECT_GT(double(t.cycles), double(b.cycles) * 1.3);
}

TEST(Pipeline, RsOccupancyLimitsIssueWindow)
{
    // A long multiply chain with independent work behind it: a large RS
    // lets the independent adds issue past the stalled chain.
    std::string body;
    body += "    mulq t1, 3, t1\n    mulq t1, 5, t1\n";
    for (int i = 0; i < 6; ++i)
        body += strFormat("    addq t%d, 1, t%d\n", i % 3 + 2,
                          i % 3 + 2);
    const Program prog = loopProgram(2000, body);
    PipelineParams big;
    PipelineParams tiny;
    tiny.rsEntries = 4;
    const auto b = runTiming(prog, big);
    const auto t = runTiming(prog, tiny);
    EXPECT_GE(t.cycles, b.cycles);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const Program prog = loopProgram(1000, "    addq t1, 1, t1\n");
    const auto a = runTiming(prog);
    const auto b = runTiming(prog);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
}

TEST(Pipeline, InstructionCapYieldsHangOutcome)
{
    const Program prog =
        assemble(".text\nmain:\n    br zero, main\n");
    PipelineSim sim(prog, PipelineParams{});
    const auto result = sim.run(500);
    EXPECT_EQ(result.arch.outcome, RunOutcome::Hang);
    EXPECT_FALSE(result.arch.exited);
    EXPECT_EQ(result.arch.dynInsts, 500u);
}

TEST(Pipeline, CycleBudgetYieldsHangOutcome)
{
    const Program prog =
        assemble(".text\nmain:\n    br zero, main\n");
    PipelineSim sim(prog, PipelineParams{});
    const auto result = sim.run(~uint64_t(0), /*maxCycles=*/2000);
    EXPECT_EQ(result.arch.outcome, RunOutcome::Hang);
    // The run stopped within a commit-group of the budget, not at the
    // instruction cap.
    EXPECT_GT(result.cycles, 2000u);
    EXPECT_LT(result.cycles, 4000u);
}

TEST(Pipeline, ArchResultsMatchFunctionalRun)
{
    const Program prog = loopProgram(100, "    addq t1, 3, t1\n");
    ExecCore core(prog);
    const RunResult func = core.run();
    const auto timing = runTiming(prog);
    EXPECT_EQ(timing.arch.dynInsts, func.dynInsts);
    EXPECT_EQ(timing.arch.output, func.output);
    EXPECT_EQ(timing.arch.exitCode, func.exitCode);
}

// ---- DISE engine placement and miss modeling. ----

Program
memLoop()
{
    return assemble(".text\nmain:\n"
                    "    laq buf, t5\n"
                    "    li 2000, t0\n"
                    "loop:\n"
                    "    stq t0, 0(t5)\n"
                    "    ldq t1, 0(t5)\n"
                    "    subq t0, 1, t0\n"
                    "    bne t0, loop\n" +
                    std::string(kEpilogue) +
                    ".data\nbuf:\n    .quad 0\n");
}

TimingResult
runMfiPlacement(DisePlacement placement, uint32_t rtEntries = 0,
                uint32_t rtAssoc = 2)
{
    const Program prog = memLoop();
    MfiOptions mopts;
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, mopts));
    DiseConfig config;
    config.placement = placement;
    config.rtEntries = rtEntries;
    config.rtAssoc = rtAssoc;
    DiseController controller(config);
    controller.install(set);
    PipelineParams params;
    PipelineSim sim(prog, params, &controller);
    initMfiRegisters(sim.core(), prog);
    return sim.run();
}

TEST(PipelineDise, ExpansionAddsWork)
{
    const auto base = runTiming(memLoop());
    const auto mfi = runMfiPlacement(DisePlacement::Free);
    EXPECT_GT(mfi.cycles, base.cycles);
    EXPECT_GT(mfi.arch.diseInsts, 0u);
    EXPECT_EQ(mfi.arch.exitCode, 0);
}

TEST(PipelineDise, PlacementOrdering)
{
    const auto free = runMfiPlacement(DisePlacement::Free);
    const auto stall = runMfiPlacement(DisePlacement::Stall);
    const auto pipe = runMfiPlacement(DisePlacement::Pipe);
    // One stall per expansion is the most expensive option under heavy
    // expansion; the extra pipe stage sits between.
    EXPECT_GT(stall.cycles, pipe.cycles);
    EXPECT_GE(pipe.cycles, free.cycles);
    EXPECT_GT(stall.expansionStalls, 0u);
}

TEST(PipelineDise, PipePlacementTaxesMispredicts)
{
    // With an unpredictable branch, the deeper pipe costs more even
    // without any expansions (ACF-free code).
    const Program prog = loopProgram(
        3000, "    mulq t1, 97, t1\n    addq t1, 13, t1\n"
              "    blbs t1, skip\n    addq t2, 1, t2\nskip:\n");
    auto emptySet = std::make_shared<ProductionSet>();
    DiseConfig pipeCfg;
    pipeCfg.placement = DisePlacement::Pipe;
    DiseController pipeCtl(pipeCfg);
    pipeCtl.install(emptySet);
    PipelineParams params;
    const auto pipe = runTiming(prog, params, &pipeCtl);

    DiseConfig stallCfg;
    stallCfg.placement = DisePlacement::Stall;
    DiseController stallCtl(stallCfg);
    stallCtl.install(emptySet);
    const auto stall = runTiming(prog, params, &stallCtl);

    // No expansions happen in either: stall-mode then costs nothing,
    // pipe-mode pays on every mispredict.
    EXPECT_EQ(stall.expansionStalls, 0u);
    EXPECT_GT(pipe.cycles, stall.cycles);
}

TEST(PipelineDise, RtMissesFlushAndStall)
{
    // Two distinct length-4 sequences (ids 1 and 2) whose RT sets fully
    // overlap in an 8-entry direct-mapped RT: the alternating store/load
    // triggers of the loop thrash it, while a perfect RT pays only the
    // cold PT fills.
    const Program prog = memLoop();
    auto makeSet = [&]() {
        return std::make_shared<ProductionSet>(parseProductions(
            "P1: class == store -> R1\n"
            "P2: class == load -> R2\n"
            "R1: srl T.RS, #26, $dr1\n"
            "    cmpeq $dr1, $dr2, $dr1\n"
            "    beq $dr1, @error\n"
            "    T.INSN\n"
            "R2: srl T.RS, #26, $dr4\n"
            "    cmpeq $dr4, $dr2, $dr4\n"
            "    beq $dr4, @error\n"
            "    T.INSN\n",
            prog.symbols));
    };
    auto runWith = [&](uint32_t rtEntries) {
        DiseConfig config;
        config.placement = DisePlacement::Pipe;
        config.rtEntries = rtEntries;
        config.rtAssoc = 1;
        DiseController controller(config);
        controller.install(makeSet());
        PipelineParams params;
        PipelineSim sim(prog, params, &controller);
        initMfiRegisters(sim.core(), prog);
        return sim.run();
    };
    const auto perfect = runWith(0);
    const auto tiny = runWith(8);
    EXPECT_GT(tiny.missStallCycles, perfect.missStallCycles + 1000);
    EXPECT_GT(tiny.cycles, perfect.cycles);
}

TEST(PipelineDise, UnpredictedSequenceBranchesCost)
{
    // An expansion with an internal always-taken DISE branch pays a
    // mispredict-like redirect on every expansion.
    const Program prog = memLoop();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == store -> R1\n"
        "R1: dbr zero, +1\n"
        "    nop\n"
        "    T.INSN\n",
        prog.symbols));
    DiseConfig config;
    DiseController controller(config);
    controller.install(set);
    PipelineParams params;
    PipelineSim sim(prog, params, &controller);
    const auto result = sim.run();
    EXPECT_GT(result.diseMispredicts, 1900u);
}

TEST(PipelineDise, SequenceLevelPredictionLearnsLoopBranches)
{
    // A production that expands the loop's own conditional branch: the
    // trigger-PC prediction must learn it just like the unexpanded one.
    const Program prog = memLoop();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == condbranch -> R1\n"
        "R1: lda $dr4, 1($dr4)\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    PipelineParams params;
    PipelineSim sim(prog, params, &controller);
    const auto result = sim.run();
    // ~2000 loop iterations: a handful of mispredicts at most.
    EXPECT_LT(result.mispredicts + result.diseMispredicts, 100u);
    EXPECT_EQ(result.arch.exitCode, 0);
}

// ---- Cycle-accounting breakdown (CycleBreakdown). ----

TEST(PipelineBuckets, SumToTotalAcrossFixtures)
{
    // run() asserts buckets.total() == cycles internally on every run;
    // re-check the reported struct across fixtures whose dominant
    // stall sources differ (compute, memory, the DISE placements).
    const TimingResult fixtures[] = {
        runTiming(loopProgram(2000, "    addq t1, 1, t1\n")),
        runTiming(memLoop()),
        runMfiPlacement(DisePlacement::Free),
        runMfiPlacement(DisePlacement::Stall),
        runMfiPlacement(DisePlacement::Pipe),
        runMfiPlacement(DisePlacement::Pipe, 8, 1), // RT thrash
    };
    for (const TimingResult &t : fixtures) {
        EXPECT_EQ(t.buckets.total(), t.cycles);
        EXPECT_GT(t.buckets.issue, 0u);
    }
}

TEST(PipelineBuckets, BranchFlushChargedForMispredicts)
{
    // Same xorshift-driven unpredictable branch as
    // Pipeline.MispredictsCostCycles.
    const char *flaky =
        "    bne t1, seeded\n"
        "    li 88675123, t1\n"
        "seeded:\n"
        "    sll t1, 13, t4\n"
        "    xor t1, t4, t1\n"
        "    srl t1, 7, t4\n"
        "    xor t1, t4, t1\n"
        "    sll t1, 17, t4\n"
        "    xor t1, t4, t1\n"
        "    blbs t1, skip\n"
        "    addq t2, 1, t2\n"
        "skip:\n";
    const char *steady = "    blbs zero, skip\n"
                         "    addq t2, 1, t2\n"
                         "skip:\n";
    const auto f = runTiming(loopProgram(3000, flaky));
    const auto s = runTiming(loopProgram(3000, steady));
    EXPECT_GT(f.mispredicts, s.mispredicts + 500);
    EXPECT_GT(f.buckets.branchFlush, s.buckets.branchFlush);
    EXPECT_EQ(f.buckets.total(), f.cycles);
}

TEST(PipelineBuckets, DmissStallChargedForMissingLoads)
{
    // Strided dependent loads: every load misses a 32KB D-cache and
    // its consumer puts the miss latency on the commit critical path.
    const Program prog = assemble(
        ".text\nmain:\n"
        "    laq arr, t5\n"
        "    li 2000, t0\n"
        "loop:\n"
        "    ldq t1, 0(t5)\n"
        "    addq t1, t1, t2\n"
        "    lda t5, 256(t5)\n"
        "    subq t0, 1, t0\n"
        "    bne t0, loop\n" +
        std::string(kEpilogue) + ".data\narr:\n    .space 1048576\n");
    const auto t = runTiming(prog);
    EXPECT_GT(t.dcacheMisses, 1000u);
    EXPECT_GT(t.buckets.dmissStall, 0u);
    EXPECT_EQ(t.buckets.total(), t.cycles);
}

TEST(PipelineBuckets, ImissStallChargedForColdCode)
{
    // A code footprint much larger than a 2KB I-cache, looped.
    std::string big = ".text\nmain:\n    li 30, t0\nloop:\n";
    for (int i = 0; i < 2048; ++i)
        big += "    addq t1, 1, t1\n";
    big += "    subq t0, 1, t0\n    bne t0, loop\n";
    big += kEpilogue;
    PipelineParams tiny;
    tiny.mem.l1iSize = 2 * 1024;
    const auto t = runTiming(assemble(big), tiny);
    EXPECT_GT(t.icacheMisses, 1000u);
    EXPECT_GT(t.buckets.imissStall, 0u);
    EXPECT_EQ(t.buckets.total(), t.cycles);
}

TEST(PipelineBuckets, DiseStallChargedForExpansionOverheads)
{
    // Stall placement: one front-end stall per expansion.
    const auto stall = runMfiPlacement(DisePlacement::Stall);
    EXPECT_GT(stall.expansionStalls, 0u);
    EXPECT_GT(stall.buckets.diseStall, 0u);
    // RT thrashing: PT/RT fill stalls land in the same bucket.
    const auto thrash = runMfiPlacement(DisePlacement::Pipe, 8, 1);
    EXPECT_GT(thrash.missStallCycles, 0u);
    EXPECT_GT(thrash.buckets.diseStall, 0u);
    EXPECT_EQ(thrash.buckets.total(), thrash.cycles);
}

/**
 * Timing checkpoints: stopping a run on its instruction budget, saving
 * a TimingSnapshot, and resuming — in the same simulator or a freshly
 * constructed one — must reproduce the uninterrupted run bit for bit:
 * cycles, every accounting bucket, cache misses, mispredicts, and all
 * architectural counters.
 */
TEST(Pipeline, TimingSnapshotSplitRunMatchesUninterrupted)
{
    const Program prog = loopProgram(800,
                                     "    ldq t2, 0(t5)\n"
                                     "    addq t3, t2, t3\n"
                                     "    stq t3, 0(t5)\n");
    PipelineParams params;
    params.mem.l1dSize = 1024; // small caches: real miss traffic
    params.mem.l1iSize = 1024;

    PipelineSim ref(prog, params);
    const TimingResult want = ref.run();
    ASSERT_EQ(want.arch.outcome, RunOutcome::Exit);

    // Split run in one simulator: budget expiry, then resume.
    PipelineSim split(prog, params);
    const TimingResult mid = split.run(1000);
    ASSERT_EQ(mid.arch.outcome, RunOutcome::Hang); // budget, not exit
    TimingSnapshot snap;
    split.saveSnapshot(snap);
    const TimingResult got = split.run();

    // Restore into a fresh simulator and finish there too.
    PipelineSim fresh(prog, params);
    fresh.restoreSnapshot(snap);
    const TimingResult got2 = fresh.run();

    for (const TimingResult *r : {&got, &got2}) {
        EXPECT_EQ(r->cycles, want.cycles);
        EXPECT_EQ(r->buckets.issue, want.buckets.issue);
        EXPECT_EQ(r->buckets.imissStall, want.buckets.imissStall);
        EXPECT_EQ(r->buckets.dmissStall, want.buckets.dmissStall);
        EXPECT_EQ(r->buckets.branchFlush, want.buckets.branchFlush);
        EXPECT_EQ(r->buckets.diseStall, want.buckets.diseStall);
        EXPECT_EQ(r->buckets.hazard, want.buckets.hazard);
        EXPECT_EQ(r->buckets.drain, want.buckets.drain);
        EXPECT_EQ(r->mispredicts, want.mispredicts);
        EXPECT_EQ(r->icacheMisses, want.icacheMisses);
        EXPECT_EQ(r->dcacheMisses, want.dcacheMisses);
        EXPECT_EQ(r->l2Misses, want.l2Misses);
        EXPECT_EQ(r->arch.outcome, want.arch.outcome);
        EXPECT_EQ(r->arch.dynInsts, want.arch.dynInsts);
        EXPECT_EQ(r->arch.output, want.arch.output);
    }
}

} // namespace
} // namespace dise
