/**
 * @file
 * Cross-module integration tests: for real workloads, the same
 * architectural results must come out of (1) native execution, (2) MFI
 * via DISE, (3) MFI via binary rewriting, (4) compression + DISE
 * decompression, and (5) composed decompression + MFI; the timing model
 * must retire exactly the streams the functional model produces; and
 * the OS-kernel layer must isolate per-process ACFs end to end.
 */

#include <gtest/gtest.h>

#include "src/acf/compose.hpp"
#include "src/assembler/assembler.hpp"
#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/acf/tracing.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/workloads/workloads.hpp"

namespace dise {
namespace {

/** Shrink a workload so functional matrix tests stay fast. */
WorkloadSpec
shrunk(const std::string &name)
{
    WorkloadSpec spec = workloadSpec(name);
    spec.targetDynInsts = 150000;
    spec.kernelIters /= 4;
    return spec;
}

class Matrix : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Matrix, AllImplementationsAgree)
{
    const WorkloadSpec spec = shrunk(GetParam());
    const Program prog = buildWorkload(spec);

    ExecCore native(prog);
    const RunResult ref = native.run(20000000);
    ASSERT_TRUE(ref.exited);
    ASSERT_EQ(ref.exitCode, 0);

    MfiOptions mopts;
    const ProductionSet mfi = makeMfiProductions(prog, mopts);

    // (2) MFI via DISE.
    {
        DiseController ctl;
        ctl.install(std::make_shared<ProductionSet>(mfi));
        ExecCore core(prog, &ctl);
        initMfiRegisters(core, prog);
        const RunResult r = core.run(40000000);
        EXPECT_EQ(r.output, ref.output);
        EXPECT_EQ(r.exitCode, 0);
        EXPECT_GT(r.diseInsts, 0u);
    }
    // (3) MFI via rewriting.
    {
        const Program rw = applyMfiRewriting(prog);
        ExecCore core(rw);
        const RunResult r = core.run(40000000);
        EXPECT_EQ(r.output, ref.output);
        EXPECT_EQ(r.exitCode, 0);
        EXPECT_GT(r.dynInsts, ref.dynInsts);
    }
    // (4) Compression round trip.
    const auto comp = compressProgram(prog);
    {
        DiseController ctl;
        ctl.install(comp.dictionary);
        ExecCore core(comp.compressed, &ctl);
        const RunResult r = core.run(40000000);
        EXPECT_EQ(r.output, ref.output);
        EXPECT_EQ(r.dynInsts, ref.dynInsts); // exact stream recreation
        EXPECT_LT(comp.ratio(), 1.0);
    }
    // (5) Composed decompression + MFI equals MFI(uncompressed).
    {
        ComposeOptions copts;
        copts.viaMissHandler = true;
        const ProductionSet composed =
            composeNested(mfi, *comp.dictionary, copts);
        DiseController refCtl;
        refCtl.install(std::make_shared<ProductionSet>(mfi));
        ExecCore mfiCore(prog, &refCtl);
        initMfiRegisters(mfiCore, prog);
        const RunResult mres = mfiCore.run(40000000);

        DiseController ctl;
        ctl.install(std::make_shared<ProductionSet>(composed));
        ExecCore core(comp.compressed, &ctl);
        initMfiRegisters(core, prog);
        const RunResult r = core.run(40000000);
        EXPECT_EQ(r.output, mres.output);
        EXPECT_EQ(r.dynInsts, mres.dynInsts);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, Matrix,
                         ::testing::Values("bzip2", "mcf", "vpr",
                                           "parser"),
                         [](const auto &info) { return info.param; });

TEST(Integration, TimingModelRetiresFunctionalStream)
{
    const Program prog = buildWorkload(shrunk("twolf"));
    ExecCore func(prog);
    const RunResult ref = func.run(20000000);

    PipelineParams params;
    PipelineSim sim(prog, params);
    const TimingResult timing = sim.run();
    EXPECT_EQ(timing.arch.dynInsts, ref.dynInsts);
    EXPECT_EQ(timing.arch.output, ref.output);
    EXPECT_GT(timing.cycles, ref.dynInsts / 4); // width-4 bound
}

TEST(Integration, TimingWithDiseMatchesFunctionalWithDise)
{
    const Program prog = buildWorkload(shrunk("gap"));
    MfiOptions mopts;
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, mopts));

    DiseController funcCtl;
    funcCtl.install(set);
    ExecCore func(prog, &funcCtl);
    initMfiRegisters(func, prog);
    const RunResult ref = func.run(40000000);

    DiseController timCtl;
    timCtl.install(set);
    PipelineParams params;
    PipelineSim sim(prog, params, &timCtl);
    initMfiRegisters(sim.core(), prog);
    const TimingResult timing = sim.run();
    EXPECT_EQ(timing.arch.dynInsts, ref.dynInsts);
    EXPECT_EQ(timing.arch.output, ref.output);
}

TEST(Integration, ViolationDetectionEndToEnd)
{
    // Induce a wild store by corrupting the program: MFI (both kinds)
    // must trap it.
    Program prog = buildWorkload(shrunk("bzip2"));
    // Patch: overwrite the first store's base register computation is
    // fragile; instead append a misbehaving main wrapper... simplest:
    // build a program that jumps into the benchmark after a wild store.
    const Program bad = assemble(".text\n"
                                 "main:\n"
                                 "    laq main, t5\n"
                                 "    stq t5, 0(t5)\n"
                                 "    li 0, v0\n    li 0, a0\n"
                                 "    syscall\n"
                                 "error:\n"
                                 "    li 0, v0\n    li 42, a0\n"
                                 "    syscall\n");
    MfiOptions mopts;
    DiseController ctl;
    ctl.install(
        std::make_shared<ProductionSet>(makeMfiProductions(bad, mopts)));
    ExecCore core(bad, &ctl);
    initMfiRegisters(core, bad);
    EXPECT_EQ(core.run(1000).exitCode, 42);

    const Program rw = applyMfiRewriting(bad);
    ExecCore rcore(rw);
    EXPECT_EQ(rcore.run(1000).exitCode, 42);
    (void)prog;
}

TEST(Integration, TracingAcfRecordsStoreAddresses)
{
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, t5\n"
                                  "    li 3, t0\n"
                                  "loop:\n"
                                  "    stq t0, 8(t5)\n"
                                  "    subq t0, 1, t0\n"
                                  "    bne t0, loop\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  ".data\n"
                                  "buf:\n    .space 64\n"
                                  "trace:\n    .space 256\n");
    DiseController ctl;
    ctl.install(
        std::make_shared<ProductionSet>(makeTracingProductions()));
    ExecCore core(prog, &ctl);
    initTracingRegisters(core, prog.symbol("trace"));
    const RunResult result = core.run(10000);
    EXPECT_EQ(result.exitCode, 0);
    // Three identical store addresses recorded.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(core.memory().readQuad(prog.symbol("trace") + i * 8),
                  prog.symbol("buf") + 8);
    }
    EXPECT_EQ(core.memory().readQuad(prog.symbol("trace") + 24), 0u);
}

TEST(Integration, OsKernelIsolatesProcesses)
{
    // Process 1 runs with MFI; process 2 without. The kernel swaps
    // production sets and dedicated registers at each "context switch".
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, t5\n"
                                  "    ldq t0, 0(t5)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n"
                                  ".data\nbuf:\n    .quad 0\n");
    DiseConfig config;
    DiseController controller(config);
    DiseOsKernel kernel(controller);
    MfiOptions mopts;

    // Process 1 submits MFI as a user ACF from its own data space.
    DiseRegFile hwRegs;
    kernel.switchTo(1, hwRegs);
    kernel.submitUserAcf(1, makeMfiProductions(prog, mopts));
    hwRegs[2] = prog.dataSegment();
    hwRegs[3] = prog.textBase >> kSegmentShift;

    ExecCore core1(prog, &controller);
    for (unsigned i = 0; i < kNumDiseRegs; ++i)
        core1.setDiseReg(i, hwRegs[i]);
    const RunResult r1 = core1.run(1000);
    EXPECT_EQ(r1.exitCode, 0);
    EXPECT_GT(r1.expansions, 0u);

    // Switch to process 2: MFI must be inactive.
    kernel.switchTo(2, hwRegs);
    ExecCore core2(prog, &controller);
    const RunResult r2 = core2.run(1000);
    EXPECT_EQ(r2.expansions, 0u);

    // And back: process 1's productions and registers return.
    kernel.switchTo(1, hwRegs);
    EXPECT_EQ(hwRegs[2], prog.dataSegment());
    ExecCore core3(prog, &controller);
    for (unsigned i = 0; i < kNumDiseRegs; ++i)
        core3.setDiseReg(i, hwRegs[i]);
    EXPECT_GT(core3.run(1000).expansions, 0u);
}

TEST(Integration, CompressionRatiosLandInPaperBands)
{
    // Full-featured DISE compression should land well under 0.9 and the
    // dictionary should not dwarf its savings (Figure 7 top).
    const Program prog = buildWorkload(shrunk("gzip"));
    const auto result = compressProgram(prog);
    EXPECT_LT(result.ratio(), 0.85);
    EXPECT_LT(result.ratioWithDict(), 1.0);
    EXPECT_GT(result.dictEntries, 4u);
}

} // namespace
} // namespace dise
