/**
 * @file
 * Assembler and program-image tests: directives, labels, pseudo
 * instructions, branch resolution, error reporting, and basic-block
 * analysis.
 */

#include <gtest/gtest.h>

#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/isa/disasm.hpp"

namespace dise {
namespace {

TEST(Assembler, MinimalProgram)
{
    const Program prog = assemble(".text\nmain:\n    nop\n    syscall\n");
    ASSERT_EQ(prog.text.size(), 2u);
    EXPECT_EQ(prog.entry, prog.textBase);
    EXPECT_TRUE(decode(prog.text[0]).isNop());
    EXPECT_EQ(decode(prog.text[1]).cls, OpClass::Syscall);
}

TEST(Assembler, EntryDefaultsToTextStartWithoutMain)
{
    const Program prog = assemble(".text\nstart:\n    nop\n");
    EXPECT_EQ(prog.entry, prog.textBase);
}

TEST(Assembler, MainSymbolSetsEntry)
{
    const Program prog =
        assemble(".text\n    nop\nmain:\n    nop\n");
    EXPECT_EQ(prog.entry, prog.textBase + 4);
}

TEST(Assembler, MemoryOperands)
{
    const Program prog = assemble(
        ".text\n    ldq a0, -8(sp)\n    stq a1, 16(t0)\n    ldbu v0, 0(a0)\n");
    const DecodedInst ld = decode(prog.text[0]);
    EXPECT_EQ(ld.op, Opcode::LDQ);
    EXPECT_EQ(ld.ra, 16);
    EXPECT_EQ(ld.rb, kSpReg);
    EXPECT_EQ(ld.imm, -8);
    EXPECT_EQ(decode(prog.text[1]).op, Opcode::STQ);
    EXPECT_EQ(decode(prog.text[2]).op, Opcode::LDBU);
}

TEST(Assembler, OperateLiteralWithAndWithoutHash)
{
    const Program prog =
        assemble(".text\n    addq t0, #5, t1\n    addq t0, 5, t1\n");
    EXPECT_EQ(prog.text[0], prog.text[1]);
    EXPECT_TRUE(decode(prog.text[0]).useLit);
}

TEST(Assembler, BranchToLabelForwardAndBackward)
{
    const Program prog = assemble(
        ".text\n"
        "top:\n"
        "    nop\n"
        "    beq t0, done\n"
        "    br zero, top\n"
        "done:\n"
        "    nop\n");
    const DecodedInst beq = decode(prog.text[1]);
    const Addr beqPC = prog.textBase + 4;
    EXPECT_EQ(beq.branchTarget(beqPC), prog.symbol("done"));
    const DecodedInst br = decode(prog.text[2]);
    EXPECT_EQ(br.branchTarget(prog.textBase + 8), prog.symbol("top"));
}

TEST(Assembler, RelativeBranchTarget)
{
    const Program prog = assemble(".text\n    br zero, .+3\n");
    EXPECT_EQ(decode(prog.text[0]).imm, 3);
}

TEST(Assembler, JumpForms)
{
    const Program prog =
        assemble(".text\n    jsr ra, (t12)\n    ret zero, (ra)\n    ret\n");
    EXPECT_EQ(decode(prog.text[0]).op, Opcode::JSR);
    EXPECT_EQ(decode(prog.text[0]).rb, 27);
    EXPECT_EQ(prog.text[1], prog.text[2]); // 'ret' expands to ret zero,(ra)
}

TEST(Assembler, PseudoMov)
{
    const Program prog = assemble(".text\n    mov t0, t3\n");
    const DecodedInst inst = decode(prog.text[0]);
    EXPECT_EQ(inst.op, Opcode::OR);
    EXPECT_EQ(inst.ra, 1);
    EXPECT_EQ(inst.rb, kZeroReg);
    EXPECT_EQ(inst.rc, 4);
}

TEST(Assembler, PseudoLiMaterializesConstants)
{
    for (const int64_t v :
         {0l, 1l, -1l, 32767l, -32768l, 65536l, 0x12345678l, -1000000l}) {
        const Program prog =
            assemble(strFormat(".text\n    li %lld, t0\n", (long long)v));
        ASSERT_EQ(prog.text.size(), 2u);
        // Interpret: ldah t0, hi(zero); lda t0, lo(t0).
        const DecodedInst hi = decode(prog.text[0]);
        const DecodedInst lo = decode(prog.text[1]);
        const int64_t value = (hi.imm << 16) + lo.imm;
        EXPECT_EQ(value, v) << v;
    }
}

TEST(Assembler, PseudoLaqResolvesSymbols)
{
    const Program prog = assemble(
        ".text\n    laq arr+16, t0\n    nop\n.data\narr:\n    .quad 0\n");
    const DecodedInst hi = decode(prog.text[0]);
    const DecodedInst lo = decode(prog.text[1]);
    EXPECT_EQ(static_cast<Addr>((hi.imm << 16) + lo.imm),
              prog.symbol("arr") + 16);
}

TEST(Assembler, PseudoCall)
{
    const Program prog =
        assemble(".text\nmain:\n    call f\nf:\n    ret\n");
    const DecodedInst call = decode(prog.text[0]);
    EXPECT_EQ(call.op, Opcode::BSR);
    EXPECT_EQ(call.ra, kRaReg);
    EXPECT_EQ(call.branchTarget(prog.textBase), prog.symbol("f"));
}

TEST(Assembler, DataDirectives)
{
    const Program prog = assemble(
        ".text\n    nop\n"
        ".data\n"
        "a:\n    .quad 1, -1\n"
        "b:\n    .long 258\n"
        "c:\n    .byte 1, 2, 3\n"
        "d:\n    .asciiz \"hi\"\n"
        "e:\n    .align 8\n    .space 16\n");
    EXPECT_EQ(prog.symbol("a"), prog.dataBase);
    EXPECT_EQ(prog.symbol("b"), prog.dataBase + 16);
    EXPECT_EQ(prog.symbol("c"), prog.dataBase + 20);
    EXPECT_EQ(prog.symbol("d"), prog.dataBase + 23);
    // 'e' is at 26, alignment pads to 32.
    EXPECT_EQ(prog.data.size(), 32u + 16u);
    // Little-endian quad of -1.
    for (int i = 8; i < 16; ++i)
        EXPECT_EQ(prog.data[i], 0xff);
    EXPECT_EQ(prog.data[16], 2); // 258 = 0x102
    EXPECT_EQ(prog.data[17], 1);
    EXPECT_EQ(prog.data[20], 1);
    EXPECT_EQ(prog.data[23], 'h');
    EXPECT_EQ(prog.data[25], 0); // NUL
}

TEST(Assembler, QuadWithSymbolArithmetic)
{
    const Program prog = assemble(
        ".text\n    nop\n.data\nx:\n    .quad x+8\ny:\n    .quad 0\n");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= uint64_t(prog.data[i]) << (8 * i);
    EXPECT_EQ(value, prog.symbol("y"));
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program prog = assemble(
        ".text\n"
        "; full comment\n"
        "    nop ; trailing\n"
        "\n"
        "    nop // another\n");
    EXPECT_EQ(prog.text.size(), 2u);
}

TEST(Assembler, Codeword)
{
    const Program prog = assemble(".text\n    res0 17, 1, 2, 3\n");
    const DecodedInst cw = decode(prog.text[0]);
    EXPECT_EQ(cw.tag, 17);
    EXPECT_EQ(cw.ra, 1);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble(".text\n    bogus t0\n"), FatalError);
}

TEST(AssemblerErrors, UnknownSymbol)
{
    EXPECT_THROW(assemble(".text\n    beq t0, nowhere\n"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble(".text\nx:\n    nop\nx:\n    nop\n"),
                 FatalError);
}

TEST(AssemblerErrors, DedicatedRegisterRejected)
{
    EXPECT_THROW(assemble(".text\n    addq $dr1, t0, t1\n"), FatalError);
}

TEST(AssemblerErrors, DiseBranchRejected)
{
    EXPECT_THROW(assemble(".text\n    dbeq t0, done\ndone:\n    nop\n"),
                 FatalError);
}

TEST(AssemblerErrors, LiteralOutOfRange)
{
    EXPECT_THROW(assemble(".text\n    addq t0, 256, t1\n"), FatalError);
}

TEST(AssemblerErrors, DataDirectiveInText)
{
    EXPECT_THROW(assemble(".text\n    .quad 1\n"), FatalError);
}

TEST(AssemblerErrors, InstructionInData)
{
    EXPECT_THROW(assemble(".data\n    nop\n"), FatalError);
}

TEST(Program, FetchAndBounds)
{
    const Program prog = assemble(".text\n    nop\n    syscall\n");
    EXPECT_EQ(prog.fetch(prog.textBase + 4), prog.text[1]);
    EXPECT_TRUE(prog.inText(prog.textBase));
    EXPECT_FALSE(prog.inText(prog.textBase + 8));
    EXPECT_FALSE(prog.inText(prog.textBase + 1)); // misaligned
    EXPECT_EQ(prog.textBytes(), 8u);
}

TEST(Program, SegmentIds)
{
    const Program prog = assemble(".text\n    nop\n");
    EXPECT_EQ(prog.dataSegment(), 2u);
    EXPECT_EQ(prog.textBase >> kSegmentShift, 1u);
    EXPECT_EQ(prog.stackTop >> kSegmentShift, prog.dataSegment());
}

TEST(BasicBlocks, LeadersFromBranchesAndSymbols)
{
    const Program prog = assemble(
        ".text\n"
        "main:\n"
        "    nop\n"          // 0: leader (entry)
        "    nop\n"          // 1
        "    beq t0, skip\n" // 2
        "    nop\n"          // 3: leader (fall-through)
        "skip:\n"
        "    nop\n"          // 4: leader (target + symbol)
        "    ret\n"          // 5
        "after:\n"
        "    nop\n");        // 6: leader (symbol + post-control)
    const BasicBlocks bb = analyzeBasicBlocks(prog);
    EXPECT_TRUE(bb.leader[0]);
    EXPECT_FALSE(bb.leader[1]);
    EXPECT_FALSE(bb.leader[2]);
    EXPECT_TRUE(bb.leader[3]);
    EXPECT_TRUE(bb.leader[4]);
    EXPECT_FALSE(bb.leader[5]);
    EXPECT_TRUE(bb.leader[6]);
    ASSERT_EQ(bb.blocks.size(), 4u);
    EXPECT_EQ(bb.blocks[0], (std::pair<uint32_t, uint32_t>{0, 3}));
    EXPECT_EQ(bb.blocks[3], (std::pair<uint32_t, uint32_t>{6, 7}));
}

TEST(BasicBlocks, EmptyProgram)
{
    Program prog;
    const BasicBlocks bb = analyzeBasicBlocks(prog);
    EXPECT_TRUE(bb.blocks.empty());
}

TEST(Disasm, AssemblerRoundTrip)
{
    // Disassembled text re-assembles to the same words.
    const char *src = ".text\n"
                      "    ldq a0, 8(sp)\n"
                      "    addq a0, #5, v0\n"
                      "    mulq t0, t1, t2\n"
                      "    stq v0, -16(sp)\n"
                      "    ret zero, (ra)\n";
    const Program prog = assemble(src);
    std::string round = ".text\n";
    for (const Word w : prog.text)
        round += "    " + disassemble(w) + "\n";
    const Program again = assemble(round);
    EXPECT_EQ(prog.text, again.text);
}

} // namespace
} // namespace dise
