/**
 * @file
 * Simulation-service tests: SimScheduler semantics (deterministic
 * result ordering, work stealing under stress, cancellation, exception
 * propagation and pool reusability), RunRequest JSON round-tripping,
 * SimSession batch bit-identity across worker counts, and serial vs
 * parallel fault-campaign equivalence.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/acf/mfi.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/scheduler.hpp"
#include "src/faults/campaign.hpp"
#include "src/service/session.hpp"

namespace dise {
namespace {

/** Store/load loop with an output, a clean exit, and an error handler
 *  (the shape every service-level test program needs). */
const char *kLoopSource =
    ".text\n"
    "main:\n"
    "    laq buf, t5\n"
    "    li 0, t0\n"
    "    li 40, t1\n"
    "loop:\n"
    "    stq t0, 0(t5)\n"
    "    ldq t2, 0(t5)\n"
    "    addq t3, t2, t3\n"
    "    addq t0, 1, t0\n"
    "    cmplt t0, t1, t4\n"
    "    bne t4, loop\n"
    "    mov t3, a0\n    li 2, v0\n    syscall\n"
    "    li 0, v0\n    li 0, a0\n    syscall\n"
    "error:\n"
    "    li 0, v0\n    li 42, a0\n    syscall\n"
    ".data\nbuf:\n    .quad 0\n";

/** Strip host-dependent keys, mirroring validate_bench_json --compare. */
Json
stripHost(const Json &doc)
{
    if (doc.isObject()) {
        Json out = Json::object();
        for (const auto &kv : doc.members()) {
            if (kv.first == "host" || kv.first == "host_seconds")
                continue;
            out[kv.first] = stripHost(kv.second);
        }
        return out;
    }
    if (doc.isArray()) {
        Json out = Json::array();
        for (const Json &item : doc.items())
            out.push_back(stripHost(item));
        return out;
    }
    return doc;
}

// ---- SimScheduler ----

TEST(Scheduler, MapPreservesOrderAtAnyWorkerCount)
{
    std::vector<int> items;
    for (int i = 0; i < 64; ++i)
        items.push_back(i);
    const auto square = [](int x) { return x * x; };

    SimScheduler serial(1);
    SimScheduler pool(4);
    const auto a = serial.map(items, square);
    const auto b = pool.map(items, square);
    ASSERT_EQ(a.size(), items.size());
    EXPECT_EQ(a, b);
    for (size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(a[i], int(i * i));
}

TEST(Scheduler, StressManyMoreJobsThanWorkers)
{
    SimScheduler pool(3);
    std::vector<int> items;
    for (int i = 0; i < 200; ++i)
        items.push_back(i);
    std::atomic<int> ran{0};
    const auto results = pool.map(items, [&ran](int x) {
        ++ran;
        return x + 1;
    });
    EXPECT_EQ(ran.load(), 200);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(results[size_t(i)], i + 1);
}

TEST(Scheduler, ExceptionPropagatesAndPoolStaysUsable)
{
    SimScheduler pool(4);
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_THROW(pool.map(items,
                          [](int x) -> int {
                              if (x == 3)
                                  fatal("boom");
                              return x;
                          }),
                 FatalError);
    // The pool must survive a failed batch and run the next one.
    const auto results = pool.map(items, [](int x) { return x * 2; });
    for (size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(results[i], int(i) * 2);
}

TEST(Scheduler, SerialCancellationSkipsRemainingTasks)
{
    SimScheduler serial(1);
    std::vector<std::function<void()>> tasks;
    size_t ran = 0;
    for (int i = 0; i < 10; ++i) {
        tasks.push_back([&serial, &ran, i] {
            ++ran;
            if (i == 0)
                serial.cancel();
        });
    }
    const auto stats = serial.runBatch(std::move(tasks));
    EXPECT_EQ(ran, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.skipped, 9u);
}

TEST(Scheduler, ParallelCancellationStopsUnstartedTasks)
{
    SimScheduler pool(2);
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> ran{0};
    for (int i = 0; i < 64; ++i) {
        // The fifth completion cancels; at that point at most
        // completed + in-flight tasks have started, so the bulk of the
        // batch must be skipped, not run.
        tasks.push_back([&pool, &ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            if (++ran == 5)
                pool.cancel();
        });
    }
    const auto stats = pool.runBatch(std::move(tasks));
    EXPECT_EQ(stats.completed + stats.skipped, 64u);
    EXPECT_GT(stats.skipped, 0u);
    EXPECT_LT(stats.completed, 64u);
    EXPECT_EQ(ran.load(), stats.completed);
}

TEST(Scheduler, CancelOnIdleOrDrainedPoolIsANoOp)
{
    SimScheduler pool(2);
    // Cancelling before any batch ever ran must not mark the next
    // batch cancelled.
    pool.cancel();
    EXPECT_FALSE(pool.cancelled());
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    auto results = pool.map(items, [](int x) { return x + 1; });
    for (size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(results[i], int(i) + 1);

    // Cancelling a pool whose batch has fully drained is equally a
    // no-op: the daemon's shutdown path may race a cancel against the
    // last batch completing, and a stale cancel must never leak into
    // work submitted afterwards.
    pool.cancel();
    EXPECT_FALSE(pool.cancelled());
    results = pool.map(items, [](int x) { return x * 3; });
    for (size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(results[i], int(i) * 3);
}

TEST(Scheduler, TasksCancelledBeforeStartNeverRun)
{
    SimScheduler pool(2);
    // The very first task to run cancels the batch; with 2 workers at
    // most one other task can already be in flight, so at least 61 of
    // the 64 tasks must be skipped without their bodies ever running.
    std::atomic<size_t> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([&pool, &ran] {
            ++ran;
            pool.cancel();
        });
    }
    const auto stats = pool.runBatch(std::move(tasks));
    EXPECT_EQ(stats.completed + stats.skipped, 64u);
    EXPECT_EQ(ran.load(), stats.completed);
    EXPECT_LE(stats.completed, 2u);
    EXPECT_GE(stats.skipped, 62u);
}

TEST(Scheduler, NestedBatchRunsInlineWithoutDeadlock)
{
    SimScheduler pool(2);
    std::vector<int> outer{0, 1, 2, 3};
    const auto results = pool.map(outer, [&pool](int x) {
        std::vector<int> inner{10, 20, 30};
        const auto sub = pool.map(inner, [](int y) { return y + 1; });
        return x + sub[0] + sub[1] + sub[2];
    });
    for (size_t i = 0; i < outer.size(); ++i)
        EXPECT_EQ(results[i], int(i) + 11 + 21 + 31);
}

// ---- RunRequest serialization ----

TEST(RunRequest, JsonRoundTrip)
{
    RunRequest req;
    req.id = "job-7";
    req.workload = "gzip";
    req.scale = 0.25;
    req.regime = "mfi";
    req.mode = RunMode::Campaign;
    req.mfi = true;
    req.mfiVariant = MfiVariant::Dise4;
    req.watchpoint = true;
    req.dise.rtEntries = 512;
    req.dise.parityChecks = true;
    req.seed = 99;
    req.trials = 12;
    req.faultTargets = {FaultTarget::PtEntry, FaultTarget::RtEntry};
    req.snapshots = false;

    const Json doc = req.toJson();
    const RunRequest back = RunRequest::fromJson(doc);
    EXPECT_EQ(back.toJson().dump(), doc.dump());
    EXPECT_EQ(back.id, "job-7");
    EXPECT_EQ(back.mode, RunMode::Campaign);
    EXPECT_EQ(back.mfiVariant, MfiVariant::Dise4);
    EXPECT_EQ(back.dise.rtEntries, 512u);
    EXPECT_EQ(back.faultTargets.size(), 2u);
    EXPECT_FALSE(back.snapshots);
}

TEST(RunRequest, RejectsUnknownKeysAndBadShapes)
{
    Json doc = Json::object();
    doc["workload"] = Json(std::string("gzip"));
    doc["no_such_key"] = Json(true);
    EXPECT_THROW(RunRequest::fromJson(doc), FatalError);

    RunRequest both;
    both.workload = "gzip";
    both.source = ".text\n";
    EXPECT_THROW(both.validate(), FatalError);

    RunRequest neither;
    EXPECT_THROW(neither.validate(), FatalError);

    RunRequest watchpointOnly;
    watchpointOnly.workload = "gzip";
    watchpointOnly.watchpoint = true;
    EXPECT_THROW(watchpointOnly.validate(), FatalError);

    RunRequest warmTiming;
    warmTiming.workload = "gzip";
    warmTiming.mode = RunMode::Timing;
    warmTiming.warmupInsts = 100;
    EXPECT_THROW(warmTiming.validate(), FatalError);
}

// ---- SimSession ----

std::vector<RunRequest>
smallBatch()
{
    std::vector<RunRequest> reqs;
    RunRequest base;
    base.source = kLoopSource;

    RunRequest functional = base;
    functional.id = "functional";
    reqs.push_back(functional);

    RunRequest mfi = base;
    mfi.id = "mfi";
    mfi.mfi = true;
    reqs.push_back(mfi);

    RunRequest timing = base;
    timing.id = "timing";
    timing.mode = RunMode::Timing;
    reqs.push_back(timing);

    RunRequest campaign = base;
    campaign.id = "campaign";
    campaign.mode = RunMode::Campaign;
    campaign.mfi = true;
    campaign.trials = 6;
    campaign.seed = 7;
    reqs.push_back(campaign);
    return reqs;
}

TEST(SimSession, BatchBitIdenticalAcrossWorkerCounts)
{
    const std::vector<RunRequest> reqs = smallBatch();

    SimSession serial(SessionConfig{1});
    SimSession pool(SessionConfig{4});
    const auto a = serial.runBatch(reqs);
    const auto b = pool.runBatch(reqs);
    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(a[i].ok) << a[i].error;
        EXPECT_EQ(stripHost(a[i].toJson()).dump(),
                  stripHost(b[i].toJson()).dump())
            << reqs[i].id;
    }
}

TEST(SimSession, StreamsEveryResultExactlyOnce)
{
    const std::vector<RunRequest> reqs = smallBatch();
    SimSession session(SessionConfig{2});
    std::vector<int> seen(reqs.size(), 0);
    const auto responses = session.runBatch(
        reqs, [&seen](size_t index, const RunResponse &resp) {
            ASSERT_LT(index, seen.size());
            ++seen[index];
            EXPECT_TRUE(resp.ok);
        });
    EXPECT_EQ(responses.size(), reqs.size());
    for (const int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(SimSession, FatalJobReportsErrorAndBatchContinues)
{
    std::vector<RunRequest> reqs = smallBatch();
    RunRequest bad;
    bad.id = "bad";
    bad.source = "this is not assembly\n";
    reqs.insert(reqs.begin() + 1, bad);

    SimSession session(SessionConfig{2});
    const auto responses = session.runBatch(reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    EXPECT_FALSE(responses[1].ok);
    EXPECT_FALSE(responses[1].error.empty());
    for (size_t i = 0; i < responses.size(); ++i) {
        if (i != 1) {
            EXPECT_TRUE(responses[i].ok) << responses[i].error;
        }
    }
    const Json line = responses[1].toJson();
    EXPECT_TRUE(line.contains("error"));
}

TEST(SimSession, FunctionalAndTimingShareTheArchResult)
{
    RunRequest req;
    req.source = kLoopSource;
    SimSession session;
    const RunResponse functional = session.run(req);
    req.mode = RunMode::Timing;
    const RunResponse timing = session.run(req);
    ASSERT_TRUE(functional.ok);
    ASSERT_TRUE(timing.ok);
    EXPECT_EQ(functional.arch.dynInsts, timing.arch.dynInsts);
    EXPECT_EQ(functional.arch.output, timing.arch.output);
    EXPECT_GT(timing.cycles, 0u);
    // The unified serializer reports the same architectural section.
    EXPECT_EQ(functional.arch.toJson().dump(),
              timing.arch.toJson().dump());
}

TEST(SimSession, WarmStartMatchesColdRunBitForBit)
{
    RunRequest cold;
    cold.source = kLoopSource;
    cold.mfi = true;
    RunRequest warm = cold;
    warm.warmupInsts = 25;

    SimSession session(SessionConfig{2});
    const RunResponse a = session.run(cold);
    const RunResponse b = session.run(warm);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    // The warm-started run restored a snapshot at app-inst 25 and ran
    // the remainder; everything but the host section must match a run
    // that executed the whole program itself — counters, output,
    // engine statistics, all of it.
    EXPECT_EQ(stripHost(a.toJson()).dump(), stripHost(b.toJson()).dump());

    // A batch of jobs sharing the warmup point shares one cached
    // snapshot (single-flight) and every result stays identical.
    const std::vector<RunRequest> reqs(4, warm);
    const auto responses = session.runBatch(reqs);
    for (const RunResponse &r : responses) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(stripHost(r.toJson()).dump(),
                  stripHost(a.toJson()).dump());
    }

    // A warmup point past program exit degenerates to the full run.
    RunRequest past = cold;
    past.warmupInsts = ~uint64_t(0) / 2;
    const RunResponse c = session.run(past);
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_EQ(stripHost(c.toJson()).dump(), stripHost(a.toJson()).dump());
}

TEST(SimSession, ConcurrentRunAndBatchAreSafeAndBitIdentical)
{
    // The serving daemon drives one SimSession from several executor
    // threads at once — single run() calls racing runBatch() calls.
    // Every response must match what a quiet serial session produces.
    const std::vector<RunRequest> reqs = smallBatch();
    SimSession reference(SessionConfig{1});
    const auto expected = reference.runBatch(reqs);

    SimSession shared(SessionConfig{2});
    std::vector<std::vector<RunResponse>> batches(2);
    std::vector<std::vector<RunResponse>> singles(2);
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&shared, &reqs, &batches, t] {
            batches[size_t(t)] = shared.runBatch(reqs);
        });
        threads.emplace_back([&shared, &reqs, &singles, t] {
            for (const RunRequest &req : reqs)
                singles[size_t(t)].push_back(shared.run(req));
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 0; t < 2; ++t) {
        ASSERT_EQ(batches[size_t(t)].size(), reqs.size());
        ASSERT_EQ(singles[size_t(t)].size(), reqs.size());
        for (size_t i = 0; i < reqs.size(); ++i) {
            EXPECT_EQ(stripHost(batches[size_t(t)][i].toJson()).dump(),
                      stripHost(expected[i].toJson()).dump())
                << reqs[i].id;
            EXPECT_EQ(stripHost(singles[size_t(t)][i].toJson()).dump(),
                      stripHost(expected[i].toJson()).dump())
                << reqs[i].id;
        }
    }
}

// ---- Campaign: serial vs scheduler-parallel ----

TEST(Campaign, ParallelTrialsMatchSerialBitForBit)
{
    const Program prog = assemble(kLoopSource);
    CampaignSetup setup;
    setup.prog = &prog;
    setup.makeAcf = [&prog] {
        return std::make_shared<const ProductionSet>(
            makeMfiProductions(prog, MfiOptions{}));
    };
    setup.initCore = [&prog](ExecCore &core) {
        initMfiRegisters(core, prog);
    };
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.trials = 24;

    const CampaignResult serial = runCampaign(setup, cfg);
    SimScheduler pool(4);
    const CampaignResult parallel = runCampaign(setup, cfg, &pool);

    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (size_t i = 0; i < serial.trials.size(); ++i) {
        EXPECT_EQ(serial.trials[i].outcome, parallel.trials[i].outcome)
            << "trial " << i;
        EXPECT_EQ(serial.trials[i].parityDetections,
                  parallel.trials[i].parityDetections);
    }
    EXPECT_EQ(serial.counts, parallel.counts);
    EXPECT_EQ(serial.injected, parallel.injected);
    EXPECT_EQ(serial.totalDynInsts, parallel.totalDynInsts);
    EXPECT_EQ(campaignToJson(serial).dump(),
              campaignToJson(parallel).dump());
    EXPECT_EQ(serial.golden.toJson().dump(),
              parallel.golden.toJson().dump());
}

} // namespace
} // namespace dise
