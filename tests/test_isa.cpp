/**
 * @file
 * ISA tests: opcode table, register naming, encode/decode round trips
 * (including a property sweep over every opcode), trigger field roles,
 * and the disassembler.
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/isa/disasm.hpp"
#include "src/isa/inst.hpp"

namespace dise {
namespace {

TEST(Opcodes, TableLookups)
{
    EXPECT_STREQ(opName(Opcode::LDQ), "ldq");
    EXPECT_EQ(opInfo(Opcode::LDQ).cls, OpClass::Load);
    EXPECT_EQ(opInfo(Opcode::STQ).cls, OpClass::Store);
    EXPECT_EQ(opInfo(Opcode::BEQ).cls, OpClass::CondBranch);
    EXPECT_EQ(opInfo(Opcode::MULQ).cls, OpClass::IntMult);
    EXPECT_EQ(opInfo(Opcode::RES0).cls, OpClass::Codeword);
    EXPECT_EQ(opInfo(Opcode::DBEQ).cls, OpClass::DiseBranch);
}

TEST(Opcodes, LdaIsNotALoad)
{
    // LDA/LDAH are address arithmetic; MFI must not expand them.
    EXPECT_EQ(opInfo(Opcode::LDA).cls, OpClass::IntAlu);
    EXPECT_EQ(opInfo(Opcode::LDAH).cls, OpClass::IntAlu);
}

TEST(Opcodes, NameRoundTrip)
{
    for (unsigned i = 0; i < unsigned(Opcode::NUM_OPCODES); ++i) {
        const Opcode op = static_cast<Opcode>(i);
        if (!opInfo(op).valid)
            continue;
        const auto back = opFromName(opName(op));
        ASSERT_TRUE(back.has_value()) << opName(op);
        EXPECT_EQ(*back, op);
    }
}

TEST(Opcodes, UnknownNameRejected)
{
    EXPECT_FALSE(opFromName("frobnicate").has_value());
}

TEST(Opcodes, ClassPredicates)
{
    EXPECT_TRUE(isControlClass(OpClass::CondBranch));
    EXPECT_TRUE(isControlClass(OpClass::Return));
    EXPECT_FALSE(isControlClass(OpClass::DiseBranch));
    EXPECT_TRUE(isIndirectClass(OpClass::Jump));
    EXPECT_FALSE(isIndirectClass(OpClass::Call));
}

TEST(Regs, NamesAndAliases)
{
    EXPECT_EQ(regName(31), "zero");
    EXPECT_EQ(regName(30), "sp");
    EXPECT_EQ(regName(0), "v0");
    EXPECT_EQ(regName(16), "a0");
    EXPECT_EQ(regName(33), "$dr1");
}

TEST(Regs, ParseForms)
{
    EXPECT_EQ(*regFromName("r31"), 31);
    EXPECT_EQ(*regFromName("$17"), 17);
    EXPECT_EQ(*regFromName("sp"), kSpReg);
    EXPECT_EQ(*regFromName("ra"), kRaReg);
    EXPECT_EQ(*regFromName("$dr0"), kDiseRegBase);
    EXPECT_EQ(*regFromName("dr7"), kDiseRegBase + 7);
    EXPECT_FALSE(regFromName("bogus").has_value());
}

TEST(Regs, Predicates)
{
    EXPECT_TRUE(isArchReg(0));
    EXPECT_TRUE(isArchReg(31));
    EXPECT_FALSE(isArchReg(32));
    EXPECT_TRUE(isDiseReg(32));
    EXPECT_TRUE(isDiseReg(39));
    EXPECT_FALSE(isDiseReg(40));
}

TEST(Encode, MemoryRoundTrip)
{
    const Word w = makeMemory(Opcode::LDQ, 5, 30, -32768);
    const DecodedInst inst = decode(w);
    EXPECT_EQ(inst.op, Opcode::LDQ);
    EXPECT_EQ(inst.ra, 5);
    EXPECT_EQ(inst.rb, 30);
    EXPECT_EQ(inst.imm, -32768);
    EXPECT_EQ(encode(inst), w);
}

TEST(Encode, BranchRoundTrip)
{
    const Word w = makeBranch(Opcode::BNE, 3, -1048576);
    const DecodedInst inst = decode(w);
    EXPECT_EQ(inst.op, Opcode::BNE);
    EXPECT_EQ(inst.imm, -1048576);
    EXPECT_EQ(encode(inst), w);
}

TEST(Encode, OperateRegisterAndLiteralForms)
{
    const Word wr = makeOperate(Opcode::ADDQ, 1, 2, 3);
    const DecodedInst ir = decode(wr);
    EXPECT_FALSE(ir.useLit);
    EXPECT_EQ(ir.ra, 1);
    EXPECT_EQ(ir.rb, 2);
    EXPECT_EQ(ir.rc, 3);

    const Word wl = makeOperateImm(Opcode::SRL, 7, 255, 8);
    const DecodedInst il = decode(wl);
    EXPECT_TRUE(il.useLit);
    EXPECT_EQ(il.imm, 255);
    EXPECT_EQ(il.rc, 8);
    EXPECT_EQ(encode(il), wl);
}

TEST(Encode, CodewordRoundTrip)
{
    const Word w = makeCodeword(Opcode::RES0, 2047, 31, 0, 17);
    const DecodedInst inst = decode(w);
    EXPECT_EQ(inst.cls, OpClass::Codeword);
    EXPECT_EQ(inst.tag, 2047);
    EXPECT_EQ(inst.ra, 31);
    EXPECT_EQ(inst.rb, 0);
    EXPECT_EQ(inst.rc, 17);
}

TEST(Encode, CodewordImmHoldsSigned15)
{
    for (const int64_t v : {-16384l, -1l, 0l, 1l, 16383l}) {
        const Word w = makeCodewordImm(Opcode::RES1, 7, v);
        const DecodedInst inst = decode(w);
        EXPECT_EQ(inst.imm, v) << v;
        EXPECT_EQ(inst.tag, 7);
    }
}

TEST(Encode, DedicatedRegisterRejected)
{
    DecodedInst inst = decode(makeOperate(Opcode::ADDQ, 1, 2, 3));
    inst.rc = kDiseRegBase; // $dr0 has no application encoding
    EXPECT_THROW(encode(inst), PanicError);
}

TEST(Encode, OutOfRangeDisplacementRejected)
{
    DecodedInst inst = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    inst.imm = 40000;
    EXPECT_THROW(encode(inst), PanicError);
}

TEST(Encode, NopIsAllZeros)
{
    EXPECT_EQ(makeNop(), 0u);
    EXPECT_TRUE(decode(0).isNop());
}

TEST(Decode, InvalidOpcodeFlagged)
{
    // Opcode 0x3f is unassigned.
    const Word w = static_cast<Word>(0x3fu << 26);
    EXPECT_EQ(decode(w).cls, OpClass::Invalid);
}

/** Property: decode(encode(x)) == x over every valid opcode. */
class EncodeRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodeRoundTrip, AllFieldsSurvive)
{
    const Opcode op = static_cast<Opcode>(GetParam());
    const OpInfo &info = opInfo(op);
    if (!info.valid)
        GTEST_SKIP();
    Rng rng(GetParam() * 1234567 + 1);
    for (int trial = 0; trial < 50; ++trial) {
        DecodedInst inst;
        inst.op = op;
        inst.cls = info.cls;
        switch (info.format) {
          case InstFormat::Memory:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.rb = static_cast<RegIndex>(rng.below(32));
            inst.imm = rng.range(-32768, 32767);
            break;
          case InstFormat::Branch:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.imm = rng.range(-(1 << 20), (1 << 20) - 1);
            break;
          case InstFormat::Jump:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.rb = static_cast<RegIndex>(rng.below(32));
            break;
          case InstFormat::Operate:
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.useLit = rng.chance(0.5);
            if (inst.useLit)
                inst.imm = static_cast<int64_t>(rng.below(256));
            else
                inst.rb = static_cast<RegIndex>(rng.below(32));
            inst.rc = static_cast<RegIndex>(rng.below(32));
            break;
          case InstFormat::Codeword:
            inst.tag = static_cast<uint16_t>(rng.below(2048));
            inst.ra = static_cast<RegIndex>(rng.below(32));
            inst.rb = static_cast<RegIndex>(rng.below(32));
            inst.rc = static_cast<RegIndex>(rng.below(32));
            break;
          default:
            break;
        }
        const Word w = encode(inst);
        DecodedInst back = decode(w);
        EXPECT_EQ(back.op, inst.op);
        EXPECT_EQ(back.ra, inst.ra);
        EXPECT_EQ(back.rb, inst.rb);
        if (info.format == InstFormat::Operate) {
            EXPECT_EQ(back.rc, inst.rc);
            EXPECT_EQ(back.useLit, inst.useLit);
        }
        if (info.format == InstFormat::Memory ||
            info.format == InstFormat::Branch ||
            (info.format == InstFormat::Operate && inst.useLit)) {
            EXPECT_EQ(back.imm, inst.imm);
        }
        if (info.format == InstFormat::Codeword) {
            EXPECT_EQ(back.tag, inst.tag);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0u,
                                          unsigned(Opcode::NUM_OPCODES)));

TEST(Roles, LoadRoles)
{
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 5, 9, 16));
    EXPECT_EQ(ld.triggerRS(), 9); // address base
    EXPECT_EQ(ld.triggerRD(), 5); // destination
    EXPECT_EQ(ld.triggerRT(), kZeroReg);
    EXPECT_EQ(ld.destReg(), 5);
    EXPECT_EQ(ld.srcRegs(), std::vector<RegIndex>{9});
}

TEST(Roles, StoreRoles)
{
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 5, 9, 16));
    EXPECT_EQ(st.triggerRS(), 9); // address base
    EXPECT_EQ(st.triggerRT(), 5); // data
    EXPECT_FALSE(st.writesReg());
    const auto srcs = st.srcRegs();
    EXPECT_EQ(srcs.size(), 2u);
}

TEST(Roles, OperateRoles)
{
    const DecodedInst op = decode(makeOperate(Opcode::ADDQ, 1, 2, 3));
    EXPECT_EQ(op.triggerRS(), 1);
    EXPECT_EQ(op.triggerRT(), 2);
    EXPECT_EQ(op.triggerRD(), 3);
}

TEST(Roles, JumpRoles)
{
    const DecodedInst j = decode(makeJump(Opcode::JSR, 26, 27));
    EXPECT_EQ(j.triggerRS(), 27); // target register
    EXPECT_EQ(j.triggerRD(), 26); // link
}

TEST(Roles, ZeroRegWritesDiscarded)
{
    const DecodedInst op = decode(makeOperate(Opcode::ADDQ, 1, 2, 31));
    EXPECT_FALSE(op.writesReg());
}

TEST(Roles, BranchTarget)
{
    const DecodedInst b = decode(makeBranch(Opcode::BEQ, 1, -2));
    EXPECT_EQ(b.branchTarget(0x1000), 0x1000u + 4 - 8);
}

TEST(Disasm, Formats)
{
    EXPECT_EQ(disassemble(makeMemory(Opcode::LDQ, 16, 30, 8)),
              "ldq a0, 8(sp)");
    EXPECT_EQ(disassemble(makeOperate(Opcode::ADDQ, 1, 2, 3)),
              "addq t0, t1, t2");
    EXPECT_EQ(disassemble(makeOperateImm(Opcode::SRL, 1, 26, 2)),
              "srl t0, #26, t1");
    EXPECT_EQ(disassemble(makeJump(Opcode::RET, 31, 26)),
              "ret zero, (ra)");
    EXPECT_EQ(disassemble(makeSyscall()), "syscall");
    EXPECT_EQ(disassemble(makeNop()), "nop");
}

TEST(Disasm, BranchTargets)
{
    const Word w = makeBranch(Opcode::BNE, 1, 3);
    EXPECT_EQ(disassemble(w), "bne t0, .+3");
    EXPECT_EQ(disassemble(w, 0x1000), "bne t0, 0x1010");
}

TEST(Disasm, InvalidWord)
{
    const Word w = static_cast<Word>(0x3fu << 26);
    EXPECT_NE(disassemble(w).find("invalid"), std::string::npos);
}

} // namespace
} // namespace dise
