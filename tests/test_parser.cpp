/**
 * @file
 * Production-DSL parser tests, using the paper's figures as inputs.
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/dise/parser.hpp"

namespace dise {
namespace {

TEST(Parser, Figure1MemoryFaultIsolation)
{
    const std::map<std::string, Addr> symbols = {{"error", 0x4000800}};
    const ProductionSet set = parseProductions(
        "P1: class == store -> R1\n"
        "P2: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @error\n"
        "    T.INSN\n",
        symbols);
    EXPECT_EQ(set.productions().size(), 2u);
    ASSERT_EQ(set.sequences().size(), 1u);
    const ReplacementSeq &seq = set.sequences().begin()->second;
    ASSERT_EQ(seq.length(), 4u);
    EXPECT_EQ(seq.insts[0].raDir, RegDirective::TriggerRS);
    EXPECT_TRUE(seq.insts[0].templ.useLit);
    EXPECT_EQ(seq.insts[0].templ.imm, 26);
    EXPECT_EQ(seq.insts[1].templ.ra, kDiseRegBase + 1);
    EXPECT_EQ(seq.insts[1].templ.rb, kDiseRegBase + 2);
    EXPECT_EQ(seq.insts[2].immDir, ImmDirective::AbsTarget);
    EXPECT_EQ(seq.insts[2].templ.imm, 0x4000800);
    EXPECT_TRUE(seq.insts[3].isTriggerInsn);

    // The two patterns share the sequence.
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    EXPECT_EQ(*set.match(st), *set.match(ld));
}

TEST(Parser, OpcodeAndRoleConditions)
{
    const ProductionSet set = parseProductions(
        "P1: op == ldq && rs == sp && imm >= 0 -> R1\n"
        "R1: T.INSN\n");
    const auto &pattern = set.productions()[0].pattern;
    EXPECT_EQ(*pattern.opcode, Opcode::LDQ);
    EXPECT_EQ(*pattern.rs, kSpReg);
    EXPECT_EQ(*pattern.immSign, SignConstraint::NonNegative);
}

TEST(Parser, PaperStyleFieldNames)
{
    // Figure 1 spells conditions with T.OPCLASS.
    const ProductionSet set = parseProductions(
        "P1: T.OPCLASS == store -> R1\n"
        "R1: T.INSN\n");
    EXPECT_EQ(*set.productions()[0].pattern.opclass, OpClass::Store);
}

TEST(Parser, ImmediateConditions)
{
    const ProductionSet set = parseProductions(
        "P1: class == condbranch && imm < 0 -> R1\n"
        "P2: imm == 8 -> R1\n"
        "R1: T.INSN\n");
    EXPECT_EQ(*set.productions()[0].pattern.immSign,
              SignConstraint::Negative);
    EXPECT_EQ(*set.productions()[1].pattern.immValue, 8);
}

TEST(Parser, TagTarget)
{
    const ProductionSet set = parseProductions(
        "P1: op == res0 -> tag\n"
        "P2: op == res1 -> tag+100\n");
    EXPECT_TRUE(set.productions()[0].explicitTag);
    EXPECT_EQ(set.productions()[0].seqId, 0u);
    EXPECT_EQ(set.productions()[1].seqId, 100u);
}

TEST(Parser, Figure5StoreAddressTracing)
{
    const ProductionSet set = parseProductions(
        "P3: T.OPCLASS == store -> R3\n"
        "R3: lda $dr4, T.IMM(T.RS)\n"
        "    stq $dr4, 0($dr5)\n"
        "    lda $dr5, 8($dr5)\n"
        "    T.INSN\n");
    const ReplacementSeq &seq = set.sequences().begin()->second;
    ASSERT_EQ(seq.length(), 4u);
    EXPECT_EQ(seq.insts[0].immDir, ImmDirective::TriggerImm);
    EXPECT_EQ(seq.insts[0].rbDir, RegDirective::TriggerRS);
    EXPECT_EQ(seq.insts[0].templ.ra, kDiseRegBase + 4);
}

TEST(Parser, DiseBranches)
{
    const ProductionSet set = parseProductions(
        "P1: class == load -> R1\n"
        "R1: dbne $dr1, +2\n"
        "    nop\n"
        "    nop\n"
        "    T.INSN\n");
    const ReplacementSeq &seq = set.sequences().begin()->second;
    EXPECT_EQ(seq.insts[0].templ.op, Opcode::DBNE);
    EXPECT_EQ(seq.insts[0].templ.imm, 2);
    EXPECT_EQ(seq.insts[0].templ.ra, kDiseRegBase + 1);
}

TEST(Parser, CodewordParamsInSequences)
{
    // Figure 4: lda T.P1, T.P2(T.P1).
    const ProductionSet set = parseProductions(
        "P1: op == res0 -> tag\n"
        "D0: lda T.P1, T.P2(T.P1)\n"
        "    ldq a4, 0(T.P1)\n");
    const ReplacementSeq &seq = set.sequences().begin()->second;
    EXPECT_EQ(seq.insts[0].raDir, RegDirective::Param1);
    EXPECT_EQ(seq.insts[0].rbDir, RegDirective::Param1);
    EXPECT_EQ(seq.insts[0].immDir, ImmDirective::Param2);
    EXPECT_EQ(seq.insts[1].rbDir, RegDirective::Param1);
}

TEST(Parser, ParseSingleReplacementInst)
{
    const ReplacementInst rinst =
        parseReplacementInst("addq T.RS, T.RT, $dr3");
    EXPECT_EQ(rinst.raDir, RegDirective::TriggerRS);
    EXPECT_EQ(rinst.rbDir, RegDirective::TriggerRT);
    EXPECT_EQ(rinst.templ.rc, kDiseRegBase + 3);
}

TEST(Parser, AbsoluteHexTargets)
{
    const ReplacementInst rinst =
        parseReplacementInst("bne $dr1, @0x4000c00");
    EXPECT_EQ(rinst.immDir, ImmDirective::AbsTarget);
    EXPECT_EQ(rinst.templ.imm, 0x4000c00);
}

TEST(Parser, CommentsIgnored)
{
    const ProductionSet set = parseProductions(
        "; memory fault isolation\n"
        "P1: class == load -> R1  ; loads only\n"
        "R1: T.INSN // identity\n");
    EXPECT_EQ(set.productions().size(), 1u);
}

TEST(ParserErrors, UnknownSequence)
{
    EXPECT_THROW(parseProductions("P1: class == load -> NOPE\n"),
                 FatalError);
}

TEST(ParserErrors, UnknownOpcode)
{
    EXPECT_THROW(parseProductions("P1: op == zork -> R1\nR1: T.INSN\n"),
                 FatalError);
}

TEST(ParserErrors, UnknownClass)
{
    EXPECT_THROW(
        parseProductions("P1: class == zork -> R1\nR1: T.INSN\n"),
        FatalError);
}

TEST(ParserErrors, EmptySequence)
{
    EXPECT_THROW(parseProductions("R1:\nP1: class == load -> R1\n"),
                 FatalError);
}

TEST(ParserErrors, InstructionOutsideSequence)
{
    EXPECT_THROW(parseProductions("    addq t0, t1, t2\n"), FatalError);
}

TEST(ParserErrors, CodewordInSequenceRejected)
{
    // No recursive expansion: codewords cannot appear in sequences.
    EXPECT_THROW(parseProductions("P1: class == load -> R1\n"
                                  "R1: res0 1, 2, 3, 4\n"),
                 FatalError);
}

TEST(ParserErrors, RawNumericBranchTargetRejected)
{
    EXPECT_THROW(parseProductions("P1: class == load -> R1\n"
                                  "R1: beq $dr1, 12\n"
                                  "    T.INSN\n"),
                 FatalError);
}

TEST(ParserErrors, UnknownTargetSymbol)
{
    EXPECT_THROW(parseProductions("P1: class == load -> R1\n"
                                  "R1: beq $dr1, @missing\n"
                                  "    T.INSN\n"),
                 FatalError);
}

} // namespace
} // namespace dise
