/**
 * @file
 * SimServer tests, driven in-process over loopback TCP: NDJSON
 * request/response exchange, the full status taxonomy (ok, error,
 * malformed, oversized, deadline_exceeded, overloaded, shutting_down),
 * idempotent result caching, bit-identity with SimSession::run, and
 * graceful drain. A small blocking client wraps the raw socket; every
 * test starts its own ephemeral-port server and shuts it down.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/logging.hpp"
#include "src/service/server.hpp"
#include "src/service/session.hpp"

namespace dise {
namespace {

/** Blocking NDJSON client for one loopback connection. */
class Client
{
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            fatal("client: socket() failed");
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(uint16_t(port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            fatal("client: connect() failed");
    }

    ~Client() { close(); }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    void
    sendLine(const std::string &body, bool newline = true)
    {
        const std::string line = newline ? body + "\n" : body;
        size_t off = 0;
        while (off < line.size()) {
            const ssize_t n =
                ::send(fd_, line.data() + off, line.size() - off, 0);
            if (n <= 0)
                fatal("client: send() failed");
            off += size_t(n);
        }
    }

    void sendLine(const Json &doc) { sendLine(doc.dump()); }

    /** Read one newline-terminated response (blocking). */
    Json
    readLine()
    {
        for (;;) {
            const size_t pos = buf_.find('\n');
            if (pos != std::string::npos) {
                const std::string line = buf_.substr(0, pos);
                buf_.erase(0, pos + 1);
                return Json::parse(line);
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                fatal("client: connection closed mid-read");
            buf_.append(chunk, size_t(n));
        }
    }

    /** Read until the response with this seq arrives; responses for
     *  other seqs (completion order is not request order) are stashed
     *  and served on their own lookups. */
    Json
    readSeq(uint64_t seq)
    {
        for (size_t i = 0; i < stash_.size(); ++i) {
            if (stash_[i]["seq"].asUInt() == seq) {
                Json doc = stash_[i];
                stash_.erase(stash_.begin() + long(i));
                return doc;
            }
        }
        for (;;) {
            Json doc = readLine();
            if (doc["seq"].asUInt() == seq)
                return doc;
            stash_.push_back(std::move(doc));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
    std::vector<Json> stash_;
};

Json
runReq(const std::string &id, const std::string &workload = "twolf")
{
    Json doc = Json::object();
    doc["id"] = Json(id);
    doc["workload"] = Json(workload);
    return doc;
}

/** Strip the serving envelope and host-dependent fields, leaving
 *  exactly what `diserun --batch` would have produced for the job. */
Json
stripEnvelope(const Json &doc)
{
    Json out = Json::object();
    for (const auto &kv : doc.members()) {
        if (kv.first == "seq" || kv.first == "status" ||
            kv.first == "latency_ms" || kv.first == "host")
            continue;
        out[kv.first] = kv.second;
    }
    if (out.contains("detail") && out["detail"].isObject() &&
        out["detail"].contains("host")) {
        Json detail = Json::object();
        for (const auto &kv : out["detail"].members())
            if (kv.first != "host")
                detail[kv.first] = kv.second;
        out["detail"] = std::move(detail);
    }
    return out;
}

struct ServerFixture
{
    explicit ServerFixture(ServerConfig config = {})
        : server(patch(std::move(config)))
    {
        server.start();
    }

    // ~SimServer drains on destruction if the test did not already
    // requestShutdown()+wait() itself.

    static ServerConfig
    patch(ServerConfig config)
    {
        config.listen = ":0"; // loopback, ephemeral
        return config;
    }

    SimServer server;
};

} // namespace

TEST(SimServer, RunStatsAndErrorStatuses)
{
    ServerFixture fx;
    Client client(fx.server.port());

    client.sendLine(runReq("ok-job"));
    Json ok = client.readSeq(1);
    EXPECT_EQ(ok["status"].asString(), "ok");
    EXPECT_EQ(ok["id"].asString(), "ok-job");
    EXPECT_TRUE(ok["ok"].asBool());
    EXPECT_TRUE(ok.contains("latency_ms"));
    EXPECT_GT(ok["run"]["dyn_insts"].asUInt(), 0u);

    client.sendLine(std::string("{ not json"));
    Json malformed = client.readSeq(2);
    EXPECT_EQ(malformed["status"].asString(), "malformed");

    client.sendLine(runReq("bad", "no_such_workload"));
    Json error = client.readSeq(3);
    EXPECT_EQ(error["status"].asString(), "error");
    EXPECT_EQ(error["id"].asString(), "bad");
    EXPECT_FALSE(error["ok"].asBool());

    Json badKey = runReq("bad-key");
    badKey["frobnicate"] = Json(true);
    client.sendLine(badKey);
    Json rejected = client.readSeq(4);
    EXPECT_EQ(rejected["status"].asString(), "error");
    EXPECT_NE(rejected["error"].asString().find("frobnicate"),
              std::string::npos);

    Json stats = Json::object();
    stats["kind"] = Json(std::string("stats"));
    client.sendLine(stats);
    Json live = client.readSeq(5);
    EXPECT_EQ(live["status"].asString(), "ok");
    EXPECT_EQ(live["stats"]["server"]["status_ok"].asUInt(), 1u);
    EXPECT_EQ(live["stats"]["server"]["status_malformed"].asUInt(), 1u);
    EXPECT_EQ(live["stats"]["server"]["status_error"].asUInt(), 2u);
}

TEST(SimServer, OversizedLineFailsOnlyThatRequest)
{
    ServerConfig config;
    config.maxLineBytes = 4096;
    ServerFixture fx(config);
    Client client(fx.server.port());

    client.sendLine(std::string(10000, 'x'));
    Json oversized = client.readSeq(1);
    EXPECT_EQ(oversized["status"].asString(), "oversized");

    // The connection survives and the next request runs normally.
    client.sendLine(runReq("after"));
    Json ok = client.readSeq(2);
    EXPECT_EQ(ok["status"].asString(), "ok");
}

TEST(SimServer, OversizedStreamWithoutNewlineIsDiscardedNotBuffered)
{
    ServerConfig config;
    config.maxLineBytes = 4096;
    ServerFixture fx(config);
    Client client(fx.server.port());

    // A newline-free stream far past the cap: exactly one "oversized"
    // answer when the cap trips, then every later chunk must be
    // dropped (not buffered) until the terminating newline arrives.
    client.sendLine(std::string(6000, 'x') + std::string(5000, 'y') +
                        std::string(8000, 'z'),
                    /*newline=*/false);
    Json oversized = client.readSeq(1);
    EXPECT_EQ(oversized["status"].asString(), "oversized");

    // End the oversized line; the connection must be clean again —
    // the next request is seq 2, which also proves no duplicate
    // "oversized" answers were emitted for the discarded tail.
    client.sendLine(std::string());
    client.sendLine(runReq("after"));
    Json ok = client.readSeq(2);
    EXPECT_EQ(ok["status"].asString(), "ok");
    EXPECT_EQ(ok["id"].asString(), "after");
}

TEST(SimServer, ResultCacheIsBoundedWithLruEviction)
{
    ServerConfig config;
    config.maxCachedResults = 1;
    ServerFixture fx(config);
    Client client(fx.server.port());

    // Two distinct request bodies (different max_insts, both large
    // enough not to matter): with a one-entry cap the second evicts
    // the first instead of growing the cache.
    Json first = runReq("first");
    first["max_insts"] = Json(uint64_t(1) << 40);
    client.sendLine(first);
    EXPECT_EQ(client.readSeq(1)["status"].asString(), "ok");
    Json second = runReq("second");
    second["max_insts"] = Json((uint64_t(1) << 40) + 1);
    client.sendLine(second);
    EXPECT_EQ(client.readSeq(2)["status"].asString(), "ok");

    Json stats = Json::object();
    stats["kind"] = Json(std::string("stats"));
    client.sendLine(stats);
    Json live = client.readSeq(3);
    EXPECT_LE(live["stats"]["server"]["result_cache_entries"].asUInt(),
              1u);
}

TEST(SimServer, WaiterOnInFlightBuildHonorsItsOwnDeadline)
{
    ServerFixture fx;
    Client builder(fx.server.port());
    Client waiter(fx.server.port());

    // The builder starts a slow run with no deadline; the waiter sends
    // the identical body (same cache key — ids are excluded) with a
    // 1 ms budget. Joining the in-flight build must not let the waiter
    // answer "ok" long after its own deadline passed.
    builder.sendLine(runReq("leader", "mcf"));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Json late = runReq("follower", "mcf");
    late["deadline_ms"] = Json(uint64_t(1));
    waiter.sendLine(late);

    Json follower = waiter.readSeq(1);
    EXPECT_EQ(follower["status"].asString(), "deadline_exceeded");
    EXPECT_FALSE(follower["ok"].asBool());
    Json leader = builder.readSeq(1);
    EXPECT_EQ(leader["status"].asString(), "ok");
}

TEST(SimServer, ResponsesBitIdenticalToDirectSession)
{
    ServerFixture fx;
    Client client(fx.server.port());
    client.sendLine(runReq("direct"));
    const Json served = stripEnvelope(client.readSeq(1));

    SimSession session({1});
    RunRequest req;
    req.id = "direct";
    req.workload = "twolf";
    const Json direct = stripEnvelope(session.run(req).toJson());
    EXPECT_EQ(served.dump(), direct.dump());
}

TEST(SimServer, IdenticalRequestsHitTheResultCache)
{
    ServerFixture fx;
    Client client(fx.server.port());

    client.sendLine(runReq("first"));
    Json first = client.readSeq(1);
    // Same body, different id: the cache key excludes the label, so
    // this must be a hit — and the response must carry OUR id.
    client.sendLine(runReq("second"));
    Json second = client.readSeq(2);
    EXPECT_EQ(second["status"].asString(), "ok");
    EXPECT_EQ(second["id"].asString(), "second");
    EXPECT_EQ(stripEnvelope(first)["run"].dump(),
              stripEnvelope(second)["run"].dump());

    Json stats = Json::object();
    stats["kind"] = Json(std::string("stats"));
    client.sendLine(stats);
    Json live = client.readSeq(3);
    EXPECT_GE(live["stats"]["server"]["cache_hits"].asUInt(), 1u);
}

TEST(SimServer, DeadlineExceededIsStructuredNotFatal)
{
    ServerFixture fx;
    Client client(fx.server.port());

    // An expensive run with a 1 ms budget cannot finish; the deadline
    // monitor must end it cooperatively with a structured status.
    Json doomed = runReq("doomed", "mcf");
    doomed["deadline_ms"] = Json(uint64_t(1));
    client.sendLine(doomed);
    Json resp = client.readSeq(1);
    EXPECT_EQ(resp["status"].asString(), "deadline_exceeded");
    EXPECT_FALSE(resp["ok"].asBool());

    // The daemon is unharmed; the next request succeeds.
    client.sendLine(runReq("after"));
    EXPECT_EQ(client.readSeq(2)["status"].asString(), "ok");
}

TEST(SimServer, BackpressureShedsWithRetryAfter)
{
    ServerConfig config;
    config.executors = 1;
    config.maxPending = 2;
    config.maxPendingPerClient = 2;
    ServerFixture fx(config);
    Client client(fx.server.port());

    // Flood: at most maxPending admitted at once, the rest must shed
    // immediately with a structured overloaded response. mcf runs are
    // slow enough that the flood outpaces the single executor.
    const int total = 8;
    for (int i = 0; i < total; ++i)
        client.sendLine(runReq("flood-" + std::to_string(i), "mcf"));
    size_t shed = 0, okOrRun = 0;
    for (int i = 0; i < total; ++i) {
        Json resp = client.readLine();
        const std::string status = resp["status"].asString();
        if (status == "overloaded") {
            ++shed;
            EXPECT_GT(resp["retry_after_ms"].asUInt(), 0u);
        } else {
            EXPECT_EQ(status, "ok");
            ++okOrRun;
        }
    }
    EXPECT_GT(shed, 0u);
    EXPECT_GT(okOrRun, 0u);
    EXPECT_EQ(shed + okOrRun, size_t(total));
}

TEST(SimServer, DrainAnswersQueuedAndRejectsNew)
{
    ServerFixture fx;
    Client client(fx.server.port());

    // Seed some work, then begin the drain and send another request:
    // the in-flight work completes, the late request is refused with
    // shutting_down, and wait() returns cleanly.
    client.sendLine(runReq("inflight"));
    Json done = client.readSeq(1);
    EXPECT_EQ(done["status"].asString(), "ok");

    fx.server.requestShutdown();
    client.sendLine(runReq("late"));
    Json late = client.readSeq(2);
    EXPECT_EQ(late["status"].asString(), "shutting_down");
    EXPECT_EQ(fx.server.wait(), 0);
}

TEST(SimServer, ManyClientsConcurrently)
{
    ServerConfig config;
    config.executors = 4;
    config.maxPending = 256;
    config.maxPendingPerClient = 64;
    ServerFixture fx(config);

    // Four clients, each sending four requests; every response must be
    // well-formed, correlated, and identical across clients (same
    // body => same cached result).
    std::vector<std::thread> threads;
    std::vector<std::string> runs(4);
    for (int c = 0; c < 4; ++c) {
        threads.emplace_back([&fx, &runs, c] {
            Client client(fx.server.port());
            for (uint64_t i = 1; i <= 4; ++i)
                client.sendLine(runReq("c" + std::to_string(c)));
            std::string run;
            for (uint64_t i = 1; i <= 4; ++i) {
                Json resp = client.readSeq(i);
                ASSERT_EQ(resp["status"].asString(), "ok");
                if (run.empty())
                    run = resp["run"].dump();
                else
                    EXPECT_EQ(resp["run"].dump(), run);
            }
            runs[size_t(c)] = run;
        });
    }
    for (auto &t : threads)
        t.join();
    for (int c = 1; c < 4; ++c)
        EXPECT_EQ(runs[size_t(c)], runs[0]);
}

} // namespace dise
