/**
 * @file
 * Branch predictor tests: gshare direction learning, BTB target storage
 * and replacement, and return-address-stack behaviour.
 */

#include <gtest/gtest.h>

#include "src/branch/predictor.hpp"

namespace dise {
namespace {

/** History-free configuration: a pure bimodal table, deterministic for
 *  single-branch direction tests. */
PredictorParams
bimodal()
{
    PredictorParams params;
    params.historyBits = 0;
    return params;
}

TEST(Gshare, LearnsAlwaysTaken)
{
    BranchPredictor bp(bimodal());
    const Addr pc = 0x4000000;
    const Addr target = 0x4000100;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, OpClass::CondBranch, true, target);
    const auto pred = bp.predict(pc, OpClass::CondBranch, pc + 4);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, target);
}

TEST(Gshare, HistoryConvergesInRepeatingPattern)
{
    // With history, a strict alternation becomes perfectly predictable.
    BranchPredictor bp;
    const Addr pc = 0x4000000;
    const Addr target = 0x4000100;
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        const auto pred = bp.predict(pc, OpClass::CondBranch, pc + 4);
        correct += pred.taken == taken;
        bp.update(pc, OpClass::CondBranch, taken, target);
    }
    EXPECT_GT(correct, 350);
}

TEST(Gshare, LearnsNotTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x4000000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, OpClass::CondBranch, false, 0);
    const auto pred = bp.predict(pc, OpClass::CondBranch, pc + 4);
    EXPECT_FALSE(pred.taken);
    EXPECT_EQ(pred.target, pc + 4);
}

TEST(Gshare, CountersAreHysteretic)
{
    BranchPredictor bp(bimodal());
    const Addr pc = 0x4000000;
    const Addr t = 0x400040;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, OpClass::CondBranch, true, t);
    // One not-taken outcome must not flip a saturated counter.
    bp.update(pc, OpClass::CondBranch, false, 0);
    EXPECT_TRUE(bp.predict(pc, OpClass::CondBranch, pc + 4).taken);
}

TEST(Gshare, TakenWithoutBtbTargetFallsThrough)
{
    BranchPredictor bp;
    const Addr pc = 0x4000000;
    // Train direction through a PC that never enters the BTB: use
    // updates with taken but then query a different history... simplest:
    // fresh predictor already weakly not-taken; force counters up via
    // repeated updates (which also fill the BTB), then query a DIFFERENT
    // pc aliasing the same counter but missing in the BTB.
    for (int i = 0; i < 8; ++i)
        bp.update(pc, OpClass::CondBranch, true, pc + 64);
    // Counter index depends on pc and history; after training, history
    // has shifted. The exact aliasing is implementation-defined, so just
    // check the invariant: a taken prediction always carries a target.
    const auto pred = bp.predict(pc, OpClass::CondBranch, pc + 4);
    if (pred.taken) {
        EXPECT_TRUE(pred.targetKnown);
    }
}

TEST(Btb, UnconditionalUsesBtb)
{
    BranchPredictor bp;
    const Addr pc = 0x4000000;
    const Addr target = 0x4002000;
    auto miss = bp.predict(pc, OpClass::UncondBranch, pc + 4);
    EXPECT_TRUE(miss.taken);
    EXPECT_FALSE(miss.targetKnown); // cold BTB
    bp.update(pc, OpClass::UncondBranch, true, target);
    auto hit = bp.predict(pc, OpClass::UncondBranch, pc + 4);
    EXPECT_TRUE(hit.targetKnown);
    EXPECT_EQ(hit.target, target);
}

TEST(Btb, IndirectJumpTargets)
{
    BranchPredictor bp;
    const Addr pc = 0x4000010;
    bp.update(pc, OpClass::Jump, true, 0x4444000);
    auto pred = bp.predict(pc, OpClass::Jump, pc + 4);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 0x4444000u);
}

TEST(Btb, ReplacementEvictsLru)
{
    PredictorParams params;
    params.btbEntries = 8;
    params.btbAssoc = 2; // 4 sets
    BranchPredictor bp(params);
    // Three branches mapping to the same set (pc>>2 stride of 4 sets).
    const Addr a = 0x4000000, b = a + 4 * 4 * 1, c = a + 4 * 4 * 2;
    (void)b;
    bp.update(a, OpClass::UncondBranch, true, 0x1111000);
    bp.update(a + 16, OpClass::UncondBranch, true, 0x2222000);
    bp.update(c, OpClass::UncondBranch, true, 0x3333000);
    // 'a' was LRU; it must have been evicted.
    EXPECT_FALSE(bp.predict(a, OpClass::UncondBranch, a + 4).targetKnown);
}

TEST(Ras, CallReturnPairs)
{
    BranchPredictor bp;
    bp.pushReturn(0x4000104);
    bp.pushReturn(0x4000204);
    auto r1 = bp.predict(0x5000000, OpClass::Return, 0);
    EXPECT_TRUE(r1.targetKnown);
    EXPECT_EQ(r1.target, 0x4000204u);
    auto r2 = bp.predict(0x5000010, OpClass::Return, 0);
    EXPECT_EQ(r2.target, 0x4000104u);
}

TEST(Ras, DeepRecursionWraps)
{
    PredictorParams params;
    params.rasEntries = 4;
    BranchPredictor bp(params);
    for (Addr i = 0; i < 6; ++i)
        bp.pushReturn(0x4000000 + i * 16);
    // The newest 4 survive; the first pop returns the last push.
    auto pred = bp.predict(0x5000000, OpClass::Return, 0);
    EXPECT_EQ(pred.target, 0x4000000u + 5 * 16);
}

TEST(Ras, EmptyStackFallsBackGracefully)
{
    BranchPredictor bp;
    auto pred = bp.predict(0x5000000, OpClass::Return, 0);
    EXPECT_TRUE(pred.taken);
    EXPECT_FALSE(pred.targetKnown);
}

TEST(Predictor, NonControlClassPredictsFallThrough)
{
    BranchPredictor bp;
    auto pred = bp.predict(0x4000000, OpClass::IntAlu, 0x4000004);
    EXPECT_FALSE(pred.taken);
    EXPECT_EQ(pred.target, 0x4000004u);
}

TEST(Predictor, StatsCount)
{
    BranchPredictor bp;
    bp.predict(0x4000000, OpClass::CondBranch, 0x4000004);
    bp.update(0x4000000, OpClass::CondBranch, true, 0x4000040);
    EXPECT_EQ(bp.stats().get("predictions"), 1u);
    EXPECT_EQ(bp.stats().get("updates"), 1u);
}

} // namespace
} // namespace dise
