/**
 * @file
 * Translated basic-block engine tests (src/sim/trace.hpp, DESIGN.md
 * section 9): self-modifying code invalidation inside one block and
 * across block boundaries, engine-generation invalidation on table
 * installs and injected table corruption, and full fast-vs-slow-path
 * bit-identity (architectural result, engine counters, register file,
 * memory image) on a generated MFI workload.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/acf/mfi.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/scheduler.hpp"
#include "src/dise/controller.hpp"
#include "src/dise/parser.hpp"
#include "src/sim/core.hpp"
#include "src/workloads/workloads.hpp"

namespace dise {
namespace {

/**
 * A program that patches a later instruction of its own basic block:
 * the stq overwrites both words of `target`'s li expansion (still
 * straight-line ahead of the store — no intervening control), so a
 * stale translated block would execute the original `li 0, a0` and
 * exit 0 instead of 42.
 */
constexpr const char *kSmcInBlock = R"(.text
main:
    laq donor, t0
    laq target, t1
    ldq t2, 0(t0)
    stq t2, 0(t1)
target:
    li 0, a0
    li 0, v0
    syscall
donor:
    li 42, a0
)";

/**
 * A program that patches an already-executed *other* block: `target` is
 * called once (so its block is translated and cached), then an 8-byte
 * stq rewrites both of its first two instructions, and it is called
 * again. Correct invalidation yields s1 = 0 + 5 = 5; a stale block
 * replays the original add-zero pair and exits 0.
 */
constexpr const char *kSmcCrossBlock = R"(.text
main:
    laq donor, t0
    laq target, t1
    li 0, s0
    li 0, s1
again:
    call target
    addq s0, 1, s0
    cmpeq s0, 2, t2
    beq t2, patch
    mov s1, a0
    li 0, v0
    syscall
patch:
    ldq t2, 0(t0)
    stq t2, 0(t1)
    br zero, again
target:
    addq s1, 0, s1
    addq s1, 0, s1
    ret
donor:
    addq s1, 5, s1
    addq s1, 0, s1
)";

/** Everything two runs must agree on to count as bit-identical. */
struct RunSnapshot
{
    RunResult result;
    std::map<std::string, uint64_t> engineStats;
    std::vector<uint64_t> regs;
    uint64_t memChecksum = 0;
};

void
expectIdentical(const RunSnapshot &fast, const RunSnapshot &slow)
{
    EXPECT_EQ(fast.result.outcome, slow.result.outcome);
    EXPECT_EQ(fast.result.exitCode, slow.result.exitCode);
    EXPECT_EQ(fast.result.output, slow.result.output);
    EXPECT_EQ(fast.result.dynInsts, slow.result.dynInsts);
    EXPECT_EQ(fast.result.appInsts, slow.result.appInsts);
    EXPECT_EQ(fast.result.diseInsts, slow.result.diseInsts);
    EXPECT_EQ(fast.result.expansions, slow.result.expansions);
    EXPECT_EQ(fast.result.loads, slow.result.loads);
    EXPECT_EQ(fast.result.stores, slow.result.stores);
    EXPECT_EQ(fast.result.acfDetections, slow.result.acfDetections);
    EXPECT_EQ(fast.result.trap.cause, slow.result.trap.cause);
    EXPECT_EQ(fast.engineStats, slow.engineStats);
    EXPECT_EQ(fast.regs, slow.regs);
    EXPECT_EQ(fast.memChecksum, slow.memChecksum);
}

/**
 * Run @p prog under MFI productions with the trace cache on or off.
 * When @p midRun is set, the run pauses after @p phase1Insts retired
 * instructions and the callback mutates the engine (table install,
 * corruption, ...) before the run finishes — at an identical point on
 * both paths, since the budget counts retired instructions.
 */
/** Optional fast-path knobs for runMfi (all defaults = stock core). */
struct MfiKnobs
{
    bool chaining = true; ///< superblock chaining on the fast path
    size_t blockCap = 0;  ///< nonzero: setTraceBlockCap (eviction)
};

RunSnapshot
runMfi(const Program &prog, bool traceCache,
       const std::function<void(ExecCore &, DiseController &)> &midRun =
           nullptr,
       uint64_t phase1Insts = 0, const MfiKnobs &knobs = {})
{
    MfiOptions opts;
    opts.variant = MfiVariant::Dise3;
    auto set = std::make_shared<const ProductionSet>(
        makeMfiProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    core.setTraceCacheEnabled(traceCache);
    core.setChainingEnabled(knobs.chaining);
    if (knobs.blockCap)
        core.setTraceBlockCap(knobs.blockCap);
    if (midRun) {
        core.run(phase1Insts);
        midRun(core, controller);
    }
    RunSnapshot snap;
    snap.result = core.run();
    snap.engineStats = controller.engine().stats().counters();
    for (RegIndex r = 0; r < kNumLogicalRegs; ++r)
        snap.regs.push_back(core.reg(r));
    snap.memChecksum =
        core.memory().checksum(prog.dataBase, uint64_t(1) << 20);
    return snap;
}

Program
smallWorkload(const char *name)
{
    WorkloadSpec spec = workloadSpec(name);
    spec.targetDynInsts = 60000;
    spec.kernelIters = std::max(1u, spec.kernelIters / 16);
    return buildWorkload(spec);
}

TEST(Trace, SmcWithinBlockReexecutesPatchedCode)
{
    const Program prog = assemble(kSmcInBlock);

    ExecCore fast(prog);
    EXPECT_EQ(fast.run().exitCode, 42);

    ExecCore slow(prog);
    slow.setTraceCacheEnabled(false);
    const RunResult ref = slow.run();
    EXPECT_EQ(ref.exitCode, 42);
    EXPECT_EQ(fast.result().dynInsts, ref.dynInsts);
}

TEST(Trace, SmcAcrossBlockBoundaryInvalidatesCachedBlock)
{
    const Program prog = assemble(kSmcCrossBlock);

    ExecCore fast(prog);
    EXPECT_EQ(fast.run().exitCode, 5);

    ExecCore slow(prog);
    slow.setTraceCacheEnabled(false);
    const RunResult ref = slow.run();
    EXPECT_EQ(ref.exitCode, 5);
    EXPECT_EQ(fast.result().dynInsts, ref.dynInsts);
}

TEST(Trace, FastAndSlowPathsBitIdenticalOnMfiWorkload)
{
    const Program prog = smallWorkload("bzip2");
    const RunSnapshot fast = runMfi(prog, true);
    const RunSnapshot slow = runMfi(prog, false);
    EXPECT_GT(fast.result.expansions, 0u);
    expectIdentical(fast, slow);
}

TEST(Trace, NoControllerFastSlowParity)
{
    const Program prog = smallWorkload("gzip");

    ExecCore fast(prog);
    const RunResult a = fast.run();
    ExecCore slow(prog);
    slow.setTraceCacheEnabled(false);
    const RunResult b = slow.run();

    EXPECT_EQ(a.exitCode, b.exitCode);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(fast.memory().checksum(prog.dataBase, uint64_t(1) << 20),
              slow.memory().checksum(prog.dataBase, uint64_t(1) << 20));
}

TEST(Trace, ProductionInstallBumpsGenerationAndStaysIdentical)
{
    const Program prog = smallWorkload("bzip2");

    // Swap the installed production set mid-run (Dise3 -> Dise4): the
    // engine generation must advance, stale traces must be dropped,
    // and both paths must agree on everything that follows.
    uint64_t genBefore = 0, genAfter = 0;
    const auto swapSet = [&](ExecCore &core, DiseController &controller) {
        (void)core;
        genBefore = controller.engine().generation();
        MfiOptions opts;
        opts.variant = MfiVariant::Dise4;
        controller.install(std::make_shared<const ProductionSet>(
            makeMfiProductions(prog, opts)));
        genAfter = controller.engine().generation();
    };

    const RunSnapshot fast = runMfi(prog, true, swapSet, 20000);
    EXPECT_GT(genAfter, genBefore);
    const RunSnapshot slow = runMfi(prog, false, swapSet, 20000);
    expectIdentical(fast, slow);
}

TEST(Trace, ReplacementCorruptionBumpsGenerationAndStaysIdentical)
{
    const Program prog = smallWorkload("bzip2");

    // Flip a bit in a resident RT entry mid-run. The generation bump
    // orphans every translated block, so the garbled replacement is
    // delivered through a fresh expansion on both paths alike.
    uint64_t genBefore = 0, genAfter = 0;
    bool corrupted = false;
    const auto corrupt = [&](ExecCore &core, DiseController &controller) {
        (void)core;
        genBefore = controller.engine().generation();
        corrupted = controller.engine().corruptReplacementEntry(0, 7);
        genAfter = controller.engine().generation();
    };

    const RunSnapshot fast = runMfi(prog, true, corrupt, 20000);
    EXPECT_TRUE(corrupted); // 20k MFI insts leave resident RT entries
    EXPECT_GT(genAfter, genBefore);
    const RunSnapshot slow = runMfi(prog, false, corrupt, 20000);
    expectIdentical(fast, slow);
}

TEST(Trace, FlushTablesBumpsGenerationAndStaysIdentical)
{
    const Program prog = smallWorkload("bzip2");

    uint64_t genBefore = 0, genAfter = 0;
    const auto flush = [&](ExecCore &core, DiseController &controller) {
        (void)core;
        genBefore = controller.engine().generation();
        controller.engine().flushTables();
        genAfter = controller.engine().generation();
    };

    const RunSnapshot fast = runMfi(prog, true, flush, 20000);
    EXPECT_GT(genAfter, genBefore);
    const RunSnapshot slow = runMfi(prog, false, flush, 20000);
    expectIdentical(fast, slow);
}

TEST(Trace, SequenceTrapsIdenticalAcrossPaths)
{
    // A production whose DISE branch jumps out of range when taken:
    // the pre-translated sequence path must raise the same trap at the
    // same retirement point as the generic path.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, t5\n"
                                  "    ldq t0, 0(t5)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  ".data\n"
                                  "buf:\n    .quad 7\n");
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: lda $dr1, 1(zero)\n"
        "    dbne $dr1, +9\n"
        "    T.INSN\n",
        prog.symbols));

    RunResult results[2];
    for (int traceCache = 0; traceCache < 2; ++traceCache) {
        DiseController controller;
        controller.install(set);
        ExecCore core(prog, &controller);
        core.setTraceCacheEnabled(traceCache != 0);
        results[traceCache] = core.run();
    }
    EXPECT_EQ(results[1].outcome, RunOutcome::Trap);
    EXPECT_EQ(results[1].trap.cause, results[0].trap.cause);
    EXPECT_EQ(results[1].trap.pc, results[0].trap.pc);
    EXPECT_EQ(results[1].trap.disepc, results[0].trap.disepc);
    EXPECT_EQ(results[1].dynInsts, results[0].dynInsts);
}

TEST(Trace, ChainingEngagesAndMatchesNoChainRun)
{
    const Program prog = smallWorkload("bzip2");

    const RunSnapshot chained = runMfi(prog, true);
    MfiKnobs noChain;
    noChain.chaining = false;
    const RunSnapshot unchained =
        runMfi(prog, true, nullptr, 0, noChain);
    expectIdentical(chained, unchained);

    // The stats counters prove both modes did what they claim: the
    // chained run followed patched edges, the unchained run never did.
    ExecCore probe(prog);
    probe.run();
    EXPECT_GT(probe.traceCacheStats().chainFollows, 0u);
    EXPECT_GT(probe.traceCacheStats().blocksTranslated, 0u);

    ExecCore probeOff(prog);
    probeOff.setChainingEnabled(false);
    probeOff.run();
    EXPECT_EQ(probeOff.traceCacheStats().chainFollows, 0u);
}

TEST(Trace, SmcInChainedSuccessorRepatchesStaleEdge)
{
    // kSmcCrossBlock under chaining: the `call target` edge is patched
    // on the first call; the patch loop then rewrites target's first
    // two instructions (epoch bump), so the second call must fail the
    // edge's epoch check and re-translate instead of following the
    // stale block.
    const Program prog = assemble(kSmcCrossBlock);

    ExecCore fast(prog);
    const RunResult r = fast.run();
    EXPECT_EQ(r.exitCode, 5);
    EXPECT_GT(fast.traceCacheStats().chainFollows, 0u);
    // The rewrite forces a second translation of the target block.
    EXPECT_GT(fast.traceCacheStats().blocksTranslated,
              uint64_t(4)); // distinct static blocks alone would be ~4

    ExecCore slow(prog);
    slow.setTraceCacheEnabled(false);
    const RunResult ref = slow.run();
    EXPECT_EQ(ref.exitCode, 5);
    EXPECT_EQ(r.dynInsts, ref.dynInsts);
}

TEST(Trace, EvictionPressureMidChainStaysIdentical)
{
    // A two-block trace cache capacity forces a whole-cache eviction
    // on nearly every translation — including from chainTarget, i.e.
    // *inside* a live chain, where the interpreter still holds raw
    // pointers into the just-evicted blocks (kept alive by the
    // graveyard). Everything must still be bit-identical.
    const Program prog = smallWorkload("bzip2");

    MfiKnobs pressure;
    pressure.blockCap = 2;
    const RunSnapshot fast = runMfi(prog, true, nullptr, 0, pressure);
    const RunSnapshot slow = runMfi(prog, false);
    expectIdentical(fast, slow);

    ExecCore probe(prog);
    probe.setTraceBlockCap(2);
    probe.run();
    EXPECT_GT(probe.traceCacheStats().evictions, 0u);
}

TEST(Trace, MidRunTraceCacheToggleStaysIdentical)
{
    const Program prog = smallWorkload("bzip2");
    const RunSnapshot slow = runMfi(prog, false);

    // Fast start, drop to the slow path mid-run: dispatch state and
    // chain edges become unreachable and must not leak into the rest
    // of the run.
    const RunSnapshot fastThenSlow = runMfi(
        prog, true,
        [](ExecCore &core, DiseController &) {
            core.setTraceCacheEnabled(false);
        },
        20000);
    expectIdentical(fastThenSlow, slow);

    // Slow start, enable the trace cache mid-run: blocks translate
    // and chains form from a mid-program machine state.
    const RunSnapshot slowThenFast = runMfi(
        prog, false,
        [](ExecCore &core, DiseController &) {
            core.setTraceCacheEnabled(true);
        },
        20000);
    expectIdentical(slowThenFast, slow);
}

TEST(Trace, CancelDeadlineStopsTightChainedLoop)
{
    // A two-instruction infinite loop that chains into itself: without
    // the bounded-interval cancel poll, run() would never return (the
    // chain never revisits the dispatcher). ~1k-retirement polling
    // must observe the flag and classify the run as a Hang.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    li 0, s0\n"
                                  "loop:\n"
                                  "    addq s0, 1, s0\n"
                                  "    br zero, loop\n");
    ExecCore core(prog);
    std::atomic<bool> cancel{false};
    core.setCancelFlag(&cancel);
    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        cancel.store(true, std::memory_order_relaxed);
    });
    const RunResult r = core.run(); // unbounded budget
    killer.join();
    EXPECT_EQ(r.outcome, RunOutcome::Hang);
    EXPECT_FALSE(r.exited);
    EXPECT_GT(r.dynInsts, 0u);
}

TEST(Trace, CancelDeadlineStopsDiseBranchLoop)
{
    // A replacement sequence that is itself an infinite loop (dbr
    // self-branch): the per-slot poll inside the sequence interpreter
    // must observe the deadline — chain-boundary polling alone never
    // fires because the sequence never ends.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, t5\n"
                                  "    ldq t0, 0(t5)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  ".data\n"
                                  "buf:\n    .quad 7\n");
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: dbr zero, -1\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    std::atomic<bool> cancel{false};
    core.setCancelFlag(&cancel);
    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        cancel.store(true, std::memory_order_relaxed);
    });
    const RunResult r = core.run();
    killer.join();
    EXPECT_EQ(r.outcome, RunOutcome::Hang);
    EXPECT_GT(r.diseInsts, 0u);
}

TEST(Trace, FastSlowIdentityAcrossWorkerCounts)
{
    // The chained fast path keeps all its state (trace cache, chain
    // edges, graveyard, memo slots) inside the core, so concurrent
    // cores on a worker pool must reproduce the single-threaded
    // snapshot exactly.
    const Program prog = smallWorkload("gcc");
    const RunSnapshot referenceFast = runMfi(prog, true);
    const RunSnapshot referenceSlow = runMfi(prog, false);
    expectIdentical(referenceFast, referenceSlow);

    for (unsigned workers : {1u, 4u}) {
        SimScheduler scheduler(workers);
        const std::vector<int> lanes = {0, 1, 2, 3};
        const auto snaps = scheduler.map(lanes, [&](int lane) {
            return runMfi(prog, (lane & 1) == 0);
        });
        for (const RunSnapshot &snap : snaps)
            expectIdentical(snap, referenceFast);
    }
}

} // namespace
} // namespace dise
