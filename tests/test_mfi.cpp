/**
 * @file
 * Memory fault isolation tests: the DISE3/DISE4 production sets, check
 * coverage (loads, stores, indirect jumps), violation detection, and
 * instruction-count accounting.
 */

#include <gtest/gtest.h>

#include "src/acf/mfi.hpp"
#include "src/assembler/assembler.hpp"
#include "src/dise/controller.hpp"

namespace dise {
namespace {

Program
memProgram()
{
    return assemble(".text\n"
                    "main:\n"
                    "    laq buf, t5\n"
                    "    li 5, t0\n"
                    "    stq t0, 0(t5)\n"
                    "    ldq t1, 0(t5)\n"
                    "    mov t1, a0\n    li 2, v0\n    syscall\n"
                    "    li 0, v0\n    li 0, a0\n    syscall\n"
                    "error:\n"
                    "    li 0, v0\n    li 42, a0\n    syscall\n"
                    ".data\nbuf:\n    .quad 0\n");
}

RunResult
runWithMfi(const Program &prog, const MfiOptions &opts,
           uint64_t dataSeg = ~uint64_t(0))
{
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    if (dataSeg != ~uint64_t(0))
        core.setDiseReg(2, dataSeg);
    return core.run(100000);
}

TEST(Mfi, Dise3SequenceShape)
{
    const Program prog = memProgram();
    MfiOptions opts;
    opts.variant = MfiVariant::Dise3;
    const ProductionSet set = makeMfiProductions(prog, opts);
    // Memory sequence: 3 added instructions + T.INSN.
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const auto id = set.match(ld);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(set.sequence(*id)->length(), 4u);
}

TEST(Mfi, Dise4SequenceShape)
{
    const Program prog = memProgram();
    MfiOptions opts;
    opts.variant = MfiVariant::Dise4;
    const ProductionSet set = makeMfiProductions(prog, opts);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const auto id = set.match(ld);
    EXPECT_EQ(set.sequence(*id)->length(), 5u);
}

TEST(Mfi, CleanRunUnaffected)
{
    const Program prog = memProgram();
    MfiOptions opts;
    const RunResult result = runWithMfi(prog, opts);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(result.output, "5");
    // One store and one load expand; there are no indirect jumps.
    EXPECT_EQ(result.expansions, 2u);
    EXPECT_EQ(result.diseInsts, 2u * 3u);
}

TEST(Mfi, ViolationTrapsToErrorHandler)
{
    const Program prog = memProgram();
    MfiOptions opts;
    const RunResult result = runWithMfi(prog, opts, /*dataSeg=*/999);
    EXPECT_EQ(result.exitCode, 42);
}

TEST(Mfi, OutOfSegmentStoreLandsOnErrorSymbol)
{
    // A wild store through a text pointer under the fault-detecting
    // flavour: the segment check branches to the program's "error"
    // symbol before the store executes. The core records that control
    // transfer as an ACF detection, distinguishing the handler's clean
    // exit(42) from a genuinely normal exit.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq main, t5\n"
                                  "    li 77, t0\n"
                                  "    stq t0, 0(t5)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n");
    MfiOptions opts;
    opts.variant = MfiVariant::Dise3;
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.outcome, RunOutcome::Exit);
    EXPECT_EQ(result.exitCode, 42);
    EXPECT_EQ(result.acfDetections, 1u);
    // The wild store never executed: text is intact.
    EXPECT_EQ(core.memory().readWord(prog.textBase), prog.text[0]);
    EXPECT_EQ(result.stores, 0u);
}

TEST(Mfi, Dise4AlsoCatchesViolations)
{
    const Program prog = memProgram();
    MfiOptions opts;
    opts.variant = MfiVariant::Dise4;
    EXPECT_EQ(runWithMfi(prog, opts, 999).exitCode, 42);
}

TEST(Mfi, JumpCheckToggleControlsReturnExpansion)
{
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    call f\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "f:\n"
                                  "    ret\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n");
    MfiOptions withJumps;
    EXPECT_EQ(runWithMfi(prog, withJumps).expansions, 1u); // the ret
    MfiOptions without;
    without.checkJumps = false;
    EXPECT_EQ(runWithMfi(prog, without).expansions, 0u);
}

TEST(Mfi, JumpCheckCatchesWildReturn)
{
    // Clobber the return address with a data-segment pointer: the RJMP
    // production must catch it before the jump executes.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, ra\n"
                                  "    ret\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n"
                                  ".data\nbuf:\n    .quad 0\n");
    MfiOptions opts;
    const RunResult result = runWithMfi(prog, opts);
    EXPECT_EQ(result.exitCode, 42);
}

TEST(Mfi, LdaIsNotChecked)
{
    // Address arithmetic must not trigger checks.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    lda t0, 8(zero)\n"
                                  "    ldah t1, 1(zero)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n");
    MfiOptions opts;
    EXPECT_EQ(runWithMfi(prog, opts).expansions, 0u);
}

TEST(Mfi, StackAccessesPass)
{
    // The stack lives in the data segment; stack traffic must pass.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    lda sp, -16(sp)\n"
                                  "    stq t0, 0(sp)\n"
                                  "    ldq t1, 0(sp)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n");
    MfiOptions opts;
    EXPECT_EQ(runWithMfi(prog, opts).exitCode, 0);
}

TEST(Mfi, ExplicitErrorHandlerAddress)
{
    const Program prog = memProgram();
    MfiOptions opts;
    opts.errorHandler = prog.symbol("error");
    EXPECT_EQ(runWithMfi(prog, opts, 999).exitCode, 42);
}

TEST(Mfi, InitRegistersSetsSegmentIds)
{
    const Program prog = memProgram();
    ExecCore core(prog);
    initMfiRegisters(core, prog);
    EXPECT_EQ(core.diseRegs()[2], prog.dataSegment());
    EXPECT_EQ(core.diseRegs()[3], prog.textBase >> kSegmentShift);
}

TEST(MfiSandbox, SequenceAddsTwoInstructions)
{
    const Program prog = memProgram();
    MfiOptions opts;
    opts.variant = MfiVariant::Sandbox;
    const ProductionSet set = makeMfiProductions(prog, opts);
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 1, 2, 0));
    const auto id = set.match(ld);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(set.sequence(*id)->length(), 3u);
}

TEST(MfiSandbox, LegalAccessesUnchanged)
{
    const Program prog = memProgram();
    MfiOptions opts;
    opts.variant = MfiVariant::Sandbox;
    const RunResult sandboxed = runWithMfi(prog, opts);
    ExecCore native(prog);
    const RunResult ref = native.run(100000);
    EXPECT_EQ(sandboxed.exitCode, 0);
    EXPECT_EQ(sandboxed.output, ref.output);
    EXPECT_EQ(sandboxed.expansions, 2u);
    EXPECT_EQ(sandboxed.diseInsts, 2u * 2u);
}

TEST(MfiSandbox, WildStoreForcedIntoDataSegment)
{
    // A store through a text pointer is silently redirected to the same
    // offset within the data segment: text stays intact, no trap.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq main, t5\n"
                                  "    li 77, t0\n"
                                  "    stq t0, 0(t5)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n");
    MfiOptions opts;
    opts.variant = MfiVariant::Sandbox;
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.exitCode, 0); // sandboxing never traps
    // Text untouched...
    EXPECT_EQ(core.memory().readWord(prog.textBase), prog.text[0]);
    // ...and the store landed at the same offset inside the data seg.
    const Addr offset = prog.entry & ((Addr(1) << kSegmentShift) - 1);
    EXPECT_EQ(core.memory().readQuad(prog.dataBase + offset), 77u);
}

TEST(MfiSandbox, WildReturnForcedIntoTextSegment)
{
    // A return to a data-segment address gets its high bits forced to
    // the code segment. 'dest' sits at data-segment offset 12, the same
    // offset as 'target' in text (after laq=2 insts + ret), so the
    // sandboxed return lands exactly on 'target'.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq dest, ra\n"
                                  "    ret\n"
                                  "target:\n"
                                  "    li 0, v0\n    li 7, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n"
                                  ".data\n"
                                  "    .space 12\n"
                                  "dest:\n"
                                  "    .quad 0\n");
    ASSERT_EQ(prog.symbol("dest") - prog.dataBase,
              prog.symbol("target") - prog.textBase);
    MfiOptions opts;
    opts.variant = MfiVariant::Sandbox;
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initMfiRegisters(core, prog);
    const RunResult result = core.run(1000);
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 7); // landed on 'target'
}

TEST(Mfi, Dise3SavesOneInstructionPerCheck)
{
    const Program prog = memProgram();
    MfiOptions d3;
    d3.variant = MfiVariant::Dise3;
    MfiOptions d4;
    d4.variant = MfiVariant::Dise4;
    const RunResult r3 = runWithMfi(prog, d3);
    const RunResult r4 = runWithMfi(prog, d4);
    EXPECT_EQ(r3.expansions, r4.expansions);
    EXPECT_EQ(r4.diseInsts - r3.diseInsts, r3.expansions);
    EXPECT_EQ(r3.output, r4.output);
}

} // namespace
} // namespace dise
