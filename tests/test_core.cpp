/**
 * @file
 * Architectural core tests: per-opcode semantics, syscalls, and the
 * replacement-sequence execution model (DISEPC tagging, DISE-internal
 * branches, trigger vs non-trigger application branches, dedicated
 * registers).
 */

#include <gtest/gtest.h>

#include "src/common/logging.hpp"
#include "src/assembler/assembler.hpp"
#include "src/dise/parser.hpp"
#include "src/sim/core.hpp"

namespace dise {
namespace {

/** Assemble, run to completion, return the core for inspection. */
RunResult
runAsm(const std::string &body, std::string *output = nullptr)
{
    const Program prog = assemble(".text\nmain:\n" + body +
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n");
    ExecCore core(prog);
    RunResult result = core.run(100000);
    if (output)
        *output = result.output;
    return result;
}

/** Run and return a register value at exit (via PutInt of the reg). */
int64_t
evalReg(const std::string &body, const std::string &reg)
{
    std::string out;
    runAsm(body + "    mov " + reg + ", a0\n    li 2, v0\n    syscall\n",
           &out);
    return std::stoll(out);
}

TEST(Exec, ArithmeticBasics)
{
    EXPECT_EQ(evalReg("    li 7, t0\n    addq t0, 5, t1\n", "t1"), 12);
    EXPECT_EQ(evalReg("    li 7, t0\n    subq t0, 9, t1\n", "t1"), -2);
    EXPECT_EQ(evalReg("    li 7, t0\n    mulq t0, 6, t1\n", "t1"), 42);
}

TEST(Exec, LogicAndShifts)
{
    EXPECT_EQ(evalReg("    li 12, t0\n    and t0, 10, t1\n", "t1"), 8);
    EXPECT_EQ(evalReg("    li 12, t0\n    or t0, 3, t1\n", "t1"), 15);
    EXPECT_EQ(evalReg("    li 12, t0\n    xor t0, 10, t1\n", "t1"), 6);
    EXPECT_EQ(evalReg("    li 12, t0\n    bic t0, 4, t1\n", "t1"), 8);
    EXPECT_EQ(evalReg("    li 1, t0\n    sll t0, 10, t1\n", "t1"), 1024);
    EXPECT_EQ(evalReg("    li 1024, t0\n    srl t0, 3, t1\n", "t1"), 128);
    EXPECT_EQ(evalReg("    li -16, t0\n    sra t0, 2, t1\n", "t1"), -4);
    EXPECT_EQ(evalReg("    li -16, t0\n    srl t0, 60, t1\n", "t1"), 15);
}

TEST(Exec, Comparisons)
{
    EXPECT_EQ(evalReg("    li -1, t0\n    cmplt t0, 0, t1\n", "t1"), 1);
    EXPECT_EQ(evalReg("    li -1, t0\n    cmpult t0, 0, t1\n", "t1"), 0);
    EXPECT_EQ(evalReg("    li 5, t0\n    cmple t0, 5, t1\n", "t1"), 1);
    EXPECT_EQ(evalReg("    li 5, t0\n    cmpeq t0, 5, t1\n", "t1"), 1);
    EXPECT_EQ(evalReg("    li 5, t0\n    cmpule t0, 4, t1\n", "t1"), 0);
}

TEST(Exec, ConditionalMoves)
{
    EXPECT_EQ(evalReg("    li 0, t0\n    li 9, t1\n    li 1, t2\n"
                      "    cmoveq t0, t1, t2\n",
                      "t2"),
              9);
    EXPECT_EQ(evalReg("    li 3, t0\n    li 9, t1\n    li 1, t2\n"
                      "    cmovne t0, t1, t2\n",
                      "t2"),
              9);
    EXPECT_EQ(evalReg("    li 3, t0\n    li 9, t1\n    li 1, t2\n"
                      "    cmoveq t0, t1, t2\n",
                      "t2"),
              1);
}

TEST(Exec, ZeroRegisterSemantics)
{
    EXPECT_EQ(evalReg("    addq zero, 5, zero\n    mov zero, t0\n",
                      "t0"),
              0);
}

TEST(Exec, LdaLdah)
{
    EXPECT_EQ(evalReg("    lda t0, 100(zero)\n", "t0"), 100);
    EXPECT_EQ(evalReg("    ldah t0, 2(zero)\n", "t0"), 131072);
    EXPECT_EQ(evalReg("    lda t0, -1(zero)\n", "t0"), -1);
}

TEST(Exec, LoadsAndStores)
{
    const std::string setup = "    laq buf, t5\n";
    const std::string data = ".data\nbuf:\n    .quad 0\n    .quad 0\n";
    const Program prog = assemble(
        ".text\nmain:\n" + setup +
        "    li -2, t0\n"
        "    stq t0, 0(t5)\n"
        "    ldl t1, 0(t5)\n"    // low 32 bits sign-extended
        "    ldbu t2, 0(t5)\n"   // low byte zero-extended
        "    stb t0, 8(t5)\n"
        "    ldq t3, 8(t5)\n"
        "    mov t1, a0\n    li 2, v0\n    syscall\n"
        "    li 1, v0\n    mov t2, a0\n    syscall\n"
        "    li 1, v0\n    li 10, a0\n    syscall\n"
        "    li 0, v0\n    li 0, a0\n    syscall\n" +
        data);
    ExecCore core(prog);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.output.substr(0, 2), "-2");
    EXPECT_EQ(core.memory().readQuad(prog.symbol("buf")),
              static_cast<uint64_t>(-2));
    EXPECT_EQ(core.memory().readQuad(prog.symbol("buf") + 8), 0xfeu);
    EXPECT_EQ(result.loads, 3u);
    EXPECT_EQ(result.stores, 2u);
}

TEST(Exec, BranchesAllConditions)
{
    // Each branch writes 1 to its slot if taken.
    const char *body =
        "    li -1, t0\n"
        "    li 0, t1\n"
        "    blt t0, L1\n"
        "    br zero, L2\n"
        "L1:\n"
        "    addq t1, 1, t1\n"
        "L2:\n"
        "    blbs t0, L3\n"
        "    br zero, L4\n"
        "L3:\n"
        "    addq t1, 2, t1\n"
        "L4:\n"
        "    bgt t0, L5\n"
        "    addq t1, 4, t1\n"
        "L5:\n";
    EXPECT_EQ(evalReg(body, "t1"), 1 + 2 + 4);
}

TEST(Exec, CallAndReturn)
{
    const char *body =
        "    call f\n"
        "    br zero, done\n"
        "f:\n"
        "    li 77, t0\n"
        "    ret\n"
        "done:\n";
    EXPECT_EQ(evalReg(body, "t0"), 77);
}

TEST(Exec, IndirectJumpThroughRegister)
{
    const Program prog = assemble(
        ".text\nmain:\n"
        "    laq target, t7\n"
        "    jmp zero, (t7)\n"
        "    li 1, t0\n" // skipped
        "target:\n"
        "    li 2, t0\n"
        "    mov t0, a0\n    li 2, v0\n    syscall\n"
        "    li 0, v0\n    li 0, a0\n    syscall\n");
    ExecCore core(prog);
    EXPECT_EQ(core.run(1000).output, "2");
}

TEST(Exec, SyscallBrk)
{
    const char *body = "    li 3, v0\n"
                       "    li 4096, a0\n"
                       "    syscall\n"
                       "    mov v0, t6\n";
    const int64_t brk = evalReg(body, "t6");
    EXPECT_GT(static_cast<uint64_t>(brk) >> kSegmentShift, 1u);
}

TEST(Exec, ExitCodePropagates)
{
    const Program prog =
        assemble(".text\nmain:\n    li 0, v0\n    li 42, a0\n    syscall\n");
    ExecCore core(prog);
    EXPECT_EQ(core.run(100).exitCode, 42);
}

TEST(Exec, UnknownSyscallTraps)
{
    const Program prog =
        assemble(".text\nmain:\n    li 99, v0\n    syscall\n");
    ExecCore core(prog);
    const RunResult result = core.run(100);
    EXPECT_EQ(result.outcome, RunOutcome::Trap);
    EXPECT_EQ(result.trap.cause, TrapCause::UnknownSyscall);
    EXPECT_EQ(result.trap.faultAddr, 99u);
    EXPECT_FALSE(result.exited);
    // The faulting syscall does not retire; only the preceding li
    // (a two-word pseudo-op) does.
    EXPECT_EQ(result.dynInsts, 2u);
    EXPECT_TRUE(core.trapped());
}

TEST(Exec, CodewordWithoutProductionsTraps)
{
    const Program prog =
        assemble(".text\nmain:\n    res0 1, 0, 0, 0\n");
    ExecCore core(prog);
    const RunResult result = core.run(100);
    EXPECT_EQ(result.outcome, RunOutcome::Trap);
    EXPECT_EQ(result.trap.cause, TrapCause::UnexpandedCodeword);
    EXPECT_EQ(result.trap.pc, prog.entry);
    EXPECT_EQ(result.trap.disepc, 0u);
}

TEST(Exec, RunawayPcTraps)
{
    const Program prog = assemble(".text\nmain:\n    nop\n");
    ExecCore core(prog);
    const RunResult result = core.run(100); // falls off the text end
    EXPECT_EQ(result.outcome, RunOutcome::Trap);
    EXPECT_EQ(result.trap.cause, TrapCause::PcOutOfText);
    EXPECT_EQ(result.trap.faultAddr, prog.textEnd());
    EXPECT_EQ(result.dynInsts, 1u); // the nop retired
}

TEST(Exec, StepAfterTrapReturnsFalse)
{
    const Program prog = assemble(".text\nmain:\n    nop\n");
    ExecCore core(prog);
    DynInst dyn;
    EXPECT_TRUE(core.step(dyn));  // the nop
    EXPECT_FALSE(core.step(dyn)); // trap: pc left text
    EXPECT_FALSE(core.step(dyn)); // stays halted
    EXPECT_TRUE(core.trapped());
    EXPECT_EQ(core.trap().cause, TrapCause::PcOutOfText);
}

TEST(Exec, InstructionCapYieldsHangOutcome)
{
    // An infinite loop stopped by the watchdog budget is a Hang, not an
    // error and not an exit.
    const Program prog =
        assemble(".text\nmain:\n    br zero, main\n");
    ExecCore core(prog);
    const RunResult result = core.run(50);
    EXPECT_EQ(result.outcome, RunOutcome::Hang);
    EXPECT_FALSE(result.exited);
    EXPECT_FALSE(core.trapped());
    EXPECT_EQ(result.dynInsts, 50u);
}

TEST(Exec, NormalExitHasExitOutcome)
{
    const Program prog =
        assemble(".text\nmain:\n    li 0, v0\n    li 0, a0\n    syscall\n");
    ExecCore core(prog);
    const RunResult result = core.run(100);
    EXPECT_EQ(result.outcome, RunOutcome::Exit);
    EXPECT_EQ(result.trap.cause, TrapCause::None);
    EXPECT_EQ(result.acfDetections, 0u);
}

// ---- Replacement-sequence semantics. ----

/** A program with one load between markers, plus an error handler. */
Program
loadProgram()
{
    return assemble(".text\n"
                    "main:\n"
                    "    laq buf, t5\n"
                    "    ldq t0, 8(t5)\n"
                    "    mov t0, a0\n    li 2, v0\n    syscall\n"
                    "    li 0, v0\n    li 0, a0\n    syscall\n"
                    "error:\n"
                    "    li 0, v0\n    li 42, a0\n    syscall\n"
                    ".data\n"
                    "buf:\n    .quad 11, 22\n");
}

TEST(DiseExec, DisepcTagging)
{
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @error\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    core.setDiseReg(2, prog.dataSegment());

    DynInst dyn;
    std::vector<uint32_t> disepcs;
    Addr loadPC = 0;
    while (core.step(dyn)) {
        if (dyn.expanded) {
            disepcs.push_back(dyn.disepc);
            loadPC = dyn.pc;
        } else {
            EXPECT_EQ(dyn.disepc, 0u);
        }
    }
    // Application instructions carry DISEPC 0; replacement instructions
    // are numbered from 1 and share the trigger's PC.
    EXPECT_EQ(disepcs, (std::vector<uint32_t>{1, 2, 3, 4}));
    EXPECT_EQ(loadPC, prog.textBase + 2 * 4); // after the 2-inst laq
    EXPECT_EQ(core.result().output, "22");
    EXPECT_EQ(core.result().exitCode, 0);
}

TEST(DiseExec, NonTriggerTakenBranchSquashesRest)
{
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @error\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    core.setDiseReg(2, 999); // wrong segment: the check must fire
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.exitCode, 42);
    EXPECT_EQ(result.output, ""); // the load itself never executed
}

TEST(DiseExec, DiseBranchSkipsWithinSequence)
{
    Program prog = loadProgram();
    // dbne skips one instruction when $dr1 != 0.
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: lda $dr1, 1(zero)\n"
        "    dbne $dr1, +1\n"
        "    lda $dr2, 1($dr2)\n" // skipped
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(core.diseRegs()[2], 0u); // the skipped slot never ran
    EXPECT_EQ(result.output, "22");    // trigger still executed
}

TEST(DiseExec, DiseBranchToSequenceEnd)
{
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: T.INSN\n"
        "    dbr zero, +1\n"
        "    lda $dr2, 1($dr2)\n" // unreachable... wait, +1 from slot 1
        "    lda $dr3, 1($dr3)\n",
        prog.symbols));
    // dbr at slot 1 jumps to slot 1+1+1 = 3, skipping the $dr2 bump.
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(core.diseRegs()[2], 0u);
    EXPECT_EQ(core.diseRegs()[3], 1u);
}

TEST(DiseExec, DiseBranchOutOfRangeTraps)
{
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: dbr zero, +5\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.outcome, RunOutcome::Trap);
    EXPECT_EQ(result.trap.cause, TrapCause::DiseBranchOutOfRange);
    // The trap records the precise PC:DISEPC context of the fault.
    EXPECT_EQ(result.trap.pc, prog.textBase + 2 * 4); // the load trigger
    EXPECT_EQ(result.trap.disepc, 1u);                // first slot
    EXPECT_EQ(result.trap.faultAddr, 6u);             // target slot
}

TEST(DiseExec, TriggerBranchOutcomeDeferredToSequenceEnd)
{
    // Expand conditional branches into [count; T.INSN; count]: both
    // counters must tick even for a taken branch (post-branch slots ride
    // the predicted path), and the branch must still transfer control.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    li 1, t0\n"
                                  "    bne t0, target\n"
                                  "    li 0, v0\n    li 7, a0\n"
                                  "    syscall\n" // not reached
                                  "target:\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n");
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == condbranch -> R1\n"
        "R1: lda $dr4, 1($dr4)\n"
        "    T.INSN\n"
        "    lda $dr5, 1($dr5)\n"));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.exitCode, 0); // branch taken to 'target'
    EXPECT_EQ(core.diseRegs()[4], 1u);
    EXPECT_EQ(core.diseRegs()[5], 1u); // post-branch slot executed
}

TEST(DiseExec, DedicatedRegistersInvisibleToApplication)
{
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: lda $dr7, 123(zero)\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    core.run(1000);
    EXPECT_EQ(core.diseRegs()[7], 123u);
    // All 32 architectural registers are what the native run produces.
    // (The core keeps a reference to the program, so it must outlive it.)
    const Program nativeProg = loadProgram();
    ExecCore native(nativeProg);
    native.run(1000);
    for (RegIndex r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(core.reg(r), native.reg(r)) << unsigned(r);
}

TEST(DiseExec, CountsSeparateAppAndDiseInsts)
{
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.expansions, 1u);
    EXPECT_EQ(result.diseInsts, 1u);
    const Program nativeProg = loadProgram();
    ExecCore native(nativeProg);
    const RunResult nres = native.run(1000);
    EXPECT_EQ(result.appInsts, nres.appInsts);
    EXPECT_EQ(result.dynInsts, nres.dynInsts + 1);
}

TEST(DiseExec, InternalLoopViaBackwardDiseBranch)
{
    // Replacement sequences may loop internally: a 4-iteration counted
    // loop built from DISE branches, invisible to the application.
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: lda $dr1, 4(zero)\n"
        "    lda $dr2, 1($dr2)\n"
        "    lda $dr1, -1($dr1)\n"
        "    dbne $dr1, -3\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    const RunResult result = core.run(1000);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(result.output, "22"); // the load still happened
    EXPECT_EQ(core.diseRegs()[2], 4u); // body ran 4 times
    // One expansion, dynamic length 1 + 4*3 + 1(T.INSN) = 14.
    EXPECT_EQ(result.expansions, 1u);
    EXPECT_EQ(result.diseInsts, 13u);
}

TEST(DiseExec, PreciseInterruptAndResumeMidSequence)
{
    // Stop between two replacement instructions, transfer the
    // architectural state to a fresh core (context switch), resume at
    // the saved PC:DISEPC, and get exactly the uninterrupted results.
    Program prog = loadProgram();
    const std::string dsl = "P1: class == load -> R1\n"
                            "R1: lda $dr1, 1($dr1)\n"
                            "    lda $dr2, 1($dr2)\n"
                            "    lda $dr3, 1($dr3)\n"
                            "    T.INSN\n";
    auto set = std::make_shared<ProductionSet>(
        parseProductions(dsl, prog.symbols));

    // Reference: uninterrupted run.
    DiseController refCtl;
    refCtl.install(set);
    ExecCore ref(prog, &refCtl);
    const RunResult rres = ref.run(1000);
    ASSERT_EQ(rres.exitCode, 0);

    // Interrupted run: stop after the second replacement instruction.
    DiseController ctlA;
    ctlA.install(set);
    ExecCore coreA(prog, &ctlA);
    DynInst dyn;
    while (coreA.step(dyn)) {
        if (dyn.expanded && dyn.disepc == 2)
            break;
    }
    const auto [savedPC, savedDisepc] = coreA.interruptPoint();
    EXPECT_EQ(savedDisepc, 3u); // next slot is the third

    // "Post-handler" core: fresh control, transferred state.
    DiseController ctlB;
    ctlB.install(set);
    ExecCore coreB(prog, &ctlB);
    coreB.copyArchStateFrom(coreA);
    coreB.resumeAt(savedPC, savedDisepc);
    const RunResult bres = coreB.run(1000);
    EXPECT_EQ(bres.exitCode, 0);
    EXPECT_EQ(bres.output, rres.output);
    // The skipped slots did NOT re-execute: every counter is exactly 1.
    EXPECT_EQ(coreB.diseRegs()[1], 1u);
    EXPECT_EQ(coreB.diseRegs()[2], 1u);
    EXPECT_EQ(coreB.diseRegs()[3], 1u);
    for (RegIndex r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(coreB.reg(r), ref.reg(r)) << unsigned(r);
}

TEST(DiseExec, ResumeAtApplicationBoundary)
{
    Program prog = loadProgram();
    ExecCore coreA(prog);
    DynInst dyn;
    for (int i = 0; i < 3; ++i)
        coreA.step(dyn);
    const auto [pc, disepc] = coreA.interruptPoint();
    EXPECT_EQ(disepc, 0u);

    ExecCore coreB(prog);
    coreB.copyArchStateFrom(coreA);
    coreB.resumeAt(pc, 0);
    const RunResult result = coreB.run(1000);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(result.output, "22");
}

TEST(DiseExec, DiseBranchInApplicationStreamTraps)
{
    Program prog;
    prog.text = {makeBranch(Opcode::DBR, kZeroReg, 0)};
    prog.entry = prog.textBase;
    ExecCore core(prog);
    const RunResult result = core.run(10);
    EXPECT_EQ(result.outcome, RunOutcome::Trap);
    EXPECT_EQ(result.trap.cause, TrapCause::DiseBranchInAppStream);
    EXPECT_EQ(result.dynInsts, 0u);
}

TEST(DiseExec, AcfDetectionCountsTransfersIntoErrorSymbol)
{
    // A branch into the "error" symbol is counted as an ACF detection;
    // a clean run of the same program counts zero.
    Program prog = loadProgram();
    auto set = std::make_shared<ProductionSet>(parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @error\n"
        "    T.INSN\n",
        prog.symbols));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    core.setDiseReg(2, 999); // wrong segment id: the check fires
    const RunResult caught = core.run(1000);
    EXPECT_EQ(caught.acfDetections, 1u);
    EXPECT_EQ(caught.outcome, RunOutcome::Exit); // handler exits cleanly
    EXPECT_EQ(caught.exitCode, 42);

    DiseController cleanCtl;
    cleanCtl.install(set);
    const Program prog2 = loadProgram();
    ExecCore clean(prog2, &cleanCtl);
    clean.setDiseReg(2, prog2.dataSegment());
    EXPECT_EQ(clean.run(1000).acfDetections, 0u);
}

} // namespace
} // namespace dise
