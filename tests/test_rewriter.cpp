/**
 * @file
 * Binary-rewriter tests: generic rewriting mechanics (layout, branch
 * retargeting, symbol remapping, prologues), the MFI instrumentation
 * pass, and a property test running randomly generated control-flow
 * graphs natively vs rewritten.
 */

#include <gtest/gtest.h>

#include "src/acf/rewriter.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/rng.hpp"
#include "src/sim/core.hpp"

namespace dise {
namespace {

/** Identity rule. */
std::vector<RewriteInst>
identityRule(const DecodedInst &inst, Addr pc)
{
    RewriteInst rw;
    rw.inst = inst;
    if (inst.cls == OpClass::CondBranch ||
        inst.cls == OpClass::UncondBranch || inst.cls == OpClass::Call) {
        rw.absTarget = inst.branchTarget(pc);
    }
    return {rw};
}

/** Pad every instruction with a leading nop. */
std::vector<RewriteInst>
padRule(const DecodedInst &inst, Addr pc)
{
    RewriteInst nop;
    nop.inst = decode(makeNop());
    auto out = identityRule(inst, pc);
    out.insert(out.begin(), nop);
    return out;
}

TEST(Rewriter, IdentityPreservesProgram)
{
    const Program prog = assemble(".text\nmain:\n"
                                  "    li 3, t0\n"
                                  "    beq t0, done\n"
                                  "    addq t0, 1, t0\n"
                                  "done:\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n");
    const Program out = rewriteProgram(prog, identityRule);
    EXPECT_EQ(out.text, prog.text);
    EXPECT_EQ(out.entry, prog.entry);
    EXPECT_EQ(out.symbols, prog.symbols);
}

TEST(Rewriter, PaddingRetargetsBranches)
{
    const Program prog = assemble(".text\nmain:\n"
                                  "    li 1, t0\n"
                                  "    bne t0, target\n"
                                  "    li 0, v0\n    li 7, a0\n"
                                  "    syscall\n"
                                  "target:\n"
                                  "    li 0, v0\n    li 3, a0\n"
                                  "    syscall\n");
    const Program out = rewriteProgram(prog, padRule);
    EXPECT_EQ(out.text.size(), prog.text.size() * 2);
    ExecCore core(out);
    EXPECT_EQ(core.run(1000).exitCode, 3);
    // Symbols moved with their instructions.
    EXPECT_EQ(out.symbol("target"),
              out.textBase + (out.symbol("target") - out.textBase));
    EXPECT_GT(out.symbol("target"), prog.symbol("target"));
}

TEST(Rewriter, PrologueRunsFirst)
{
    const Program prog = assemble(".text\nmain:\n"
                                  "    mov t0, a0\n"
                                  "    li 2, v0\n    syscall\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n");
    RewriteInst init;
    init.inst = decode(makeMemory(Opcode::LDA, 1, kZeroReg, 99));
    const Program out = rewriteProgram(prog, identityRule, {init});
    ExecCore core(out);
    EXPECT_EQ(core.run(1000).output, "99");
}

TEST(Rewriter, EmptyRuleOutputIsABug)
{
    const Program prog = assemble(".text\nmain:\n    nop\n");
    const RewriteRule bad = [](const DecodedInst &,
                               Addr) -> std::vector<RewriteInst> {
        return {};
    };
    EXPECT_THROW(rewriteProgram(prog, bad), PanicError);
}

Program
mfiProgram()
{
    return assemble(".text\n"
                    "main:\n"
                    "    laq buf, t5\n"
                    "    li 9, t0\n"
                    "    stq t0, 8(t5)\n"
                    "    ldq t1, 8(t5)\n"
                    "    call f\n"
                    "    addq t1, t2, a0\n"
                    "    li 2, v0\n    syscall\n"
                    "    li 0, v0\n    li 0, a0\n    syscall\n"
                    "f:\n"
                    "    li 4, t2\n"
                    "    ret\n"
                    "error:\n"
                    "    li 0, v0\n    li 42, a0\n    syscall\n"
                    ".data\nbuf:\n    .quad 0, 0\n");
}

TEST(RewriterMfi, PreservesBehaviour)
{
    const Program prog = mfiProgram();
    ExecCore native(prog);
    const RunResult nres = native.run(10000);
    const Program rw = applyMfiRewriting(prog);
    ExecCore rewritten(rw);
    const RunResult rres = rewritten.run(10000);
    EXPECT_EQ(rres.output, nres.output);
    EXPECT_EQ(rres.exitCode, 0);
}

TEST(RewriterMfi, InsertsFourInstructionsPerUnsafeOp)
{
    const Program prog = mfiProgram();
    const Program rw = applyMfiRewriting(prog);
    // 1 store + 1 load + 1 ret checked, 4 insts each, plus a 2-inst
    // prologue.
    EXPECT_EQ(rw.text.size(), prog.text.size() + 3 * 4 + 2);
}

TEST(RewriterMfi, RunsWithoutDiseHardware)
{
    // The whole point of the baseline: no controller anywhere.
    const Program rw = applyMfiRewriting(mfiProgram());
    ExecCore core(rw, nullptr);
    EXPECT_EQ(core.run(10000).exitCode, 0);
}

TEST(RewriterMfi, CatchesWildStore)
{
    // A store through a text-segment pointer must reach the handler.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq main, t5\n"
                                  "    stq t0, 0(t5)\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n");
    const Program rw = applyMfiRewriting(prog);
    ExecCore core(rw);
    EXPECT_EQ(core.run(1000).exitCode, 42);
}

TEST(RewriterMfi, CatchesWildReturn)
{
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, ra\n"
                                  "    ret\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n"
                                  ".data\nbuf:\n    .quad 0\n");
    const Program rw = applyMfiRewriting(prog);
    ExecCore core(rw);
    EXPECT_EQ(core.run(1000).exitCode, 42);
}

/**
 * Property: random branchy programs behave identically after MFI
 * rewriting (and exit cleanly, i.e. no spurious faults).
 */
class RewriterCfgProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RewriterCfgProperty, RandomCfgEquivalence)
{
    Rng rng(GetParam() * 7919 + 3);
    std::string src = ".text\nmain:\n    laq buf, t5\n    li 0, t1\n";
    const int blocks = 6 + int(rng.below(6));
    for (int b = 0; b < blocks; ++b) {
        src += strFormat("b%d:\n", b);
        const int insts = 1 + int(rng.below(4));
        for (int i = 0; i < insts; ++i) {
            switch (rng.below(4)) {
              case 0:
                src += strFormat("    addq t1, %d, t1\n",
                                 int(rng.below(16)));
                break;
              case 1:
                src += strFormat("    stq t1, %d(t5)\n",
                                 int(rng.below(8)) * 8);
                break;
              case 2:
                src += strFormat("    ldq t2, %d(t5)\n",
                                 int(rng.below(8)) * 8);
                break;
              default:
                src += "    xor t1, t2, t1\n";
                break;
            }
        }
        // Branch forward (no loops: guarantees termination).
        if (b + 1 < blocks && rng.chance(0.7)) {
            src += strFormat("    blbs t1, b%d\n",
                             b + 1 + int(rng.below(blocks - b - 1)));
        }
    }
    src += "    mov t1, a0\n    li 2, v0\n    syscall\n"
           "    li 0, v0\n    li 0, a0\n    syscall\n"
           "error:\n    li 0, v0\n    li 42, a0\n    syscall\n"
           ".data\nbuf:\n    .space 64\n";

    const Program prog = assemble(src);
    ExecCore native(prog);
    const RunResult nres = native.run(100000);
    ASSERT_EQ(nres.exitCode, 0);

    const Program rw = applyMfiRewriting(prog);
    ExecCore rewritten(rw);
    const RunResult rres = rewritten.run(100000);
    EXPECT_EQ(rres.exitCode, 0);
    EXPECT_EQ(rres.output, nres.output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterCfgProperty,
                         ::testing::Range(0, 20));

} // namespace
} // namespace dise
