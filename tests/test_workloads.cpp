/**
 * @file
 * Workload-suite tests: every benchmark builds, runs to a clean exit,
 * is deterministic, respects the ACF constraints (reserved registers,
 * no text addresses in data), and matches its profile's qualitative
 * properties (text-size bands, memory-operation density).
 */

#include <gtest/gtest.h>

#include <set>

#include "src/common/logging.hpp"
#include "src/sim/core.hpp"
#include "src/workloads/workloads.hpp"

namespace dise {
namespace {

TEST(Workloads, SuiteHasTwelveSpecNames)
{
    const std::set<std::string> expected = {
        "bzip2", "crafty", "eon",     "gap",   "gcc",    "gzip",
        "mcf",   "parser", "perlbmk", "twolf", "vortex", "vpr"};
    std::set<std::string> actual;
    for (const auto &spec : spec2000())
        actual.insert(spec.name);
    EXPECT_EQ(actual, expected);
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(workloadSpec("quake"), FatalError);
}

TEST(Workloads, GenerationIsDeterministic)
{
    const Program a = buildWorkload("parser");
    const Program b = buildWorkload("parser");
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.symbols, b.symbols);
}

TEST(Workloads, DifferentSeedsProduceDifferentCode)
{
    WorkloadSpec spec = workloadSpec("parser");
    const Program a = buildWorkload(spec);
    spec.seed += 1;
    const Program b = buildWorkload(spec);
    EXPECT_NE(a.text, b.text);
}

TEST(Workloads, ErrorHandlerAndMainPresent)
{
    for (const auto &spec : spec2000()) {
        const Program prog = buildWorkload(spec);
        EXPECT_EQ(prog.symbols.count("main"), 1u) << spec.name;
        EXPECT_EQ(prog.symbols.count("error"), 1u) << spec.name;
        EXPECT_EQ(prog.symbols.count("chk"), 1u) << spec.name;
    }
}

TEST(Workloads, TextSizeBandsMatchThePaper)
{
    // Section 4.2: crafty, gzip and vpr exceed 32 KB; about half the
    // suite exceeds 8 KB.
    unsigned over8 = 0;
    for (const auto &spec : spec2000()) {
        const Program prog = buildWorkload(spec);
        const double kb = prog.textBytes() / 1024.0;
        if (spec.name == "crafty" || spec.name == "gzip" ||
            spec.name == "vpr") {
            EXPECT_GT(kb, 32.0) << spec.name;
        } else {
            EXPECT_LT(kb, 32.0) << spec.name;
        }
        over8 += kb > 8.0;
    }
    EXPECT_GE(over8, 5u);
    EXPECT_LE(over8, 9u);
}

TEST(Workloads, ReservedRegistersUntouched)
{
    // s0..s4 belong to the binary rewriter; generated code (and the
    // kernels) must not name them.
    for (const auto &spec : spec2000()) {
        const Program prog = buildWorkload(spec);
        for (const Word w : prog.text) {
            const DecodedInst inst = decode(w);
            if (inst.cls == OpClass::Invalid || inst.isNop())
                continue;
            for (const RegIndex r : inst.srcRegs())
                EXPECT_TRUE(r < 9 || r > 13)
                    << spec.name << ": " << unsigned(r);
            const RegIndex d = inst.destReg();
            EXPECT_TRUE(d < 9 || d > 13 || d == kZeroReg) << spec.name;
        }
    }
}

TEST(Workloads, NoTextAddressesInData)
{
    // The rewriter relocates code; data must not embed text pointers.
    for (const auto &spec : spec2000()) {
        const Program prog = buildWorkload(spec);
        for (size_t i = 0; i + 8 <= prog.data.size(); i += 8) {
            uint64_t q = 0;
            for (int b = 0; b < 8; ++b)
                q |= uint64_t(prog.data[i + b]) << (8 * b);
            EXPECT_FALSE(q >= prog.textBase && q < prog.textEnd())
                << spec.name << " data+" << i;
        }
    }
}

/** Every benchmark runs to a clean exit with plausible composition. */
class WorkloadRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRun, ExecutesToCleanExit)
{
    const WorkloadSpec &spec = workloadSpec(GetParam());
    const Program prog = buildWorkload(spec);
    ExecCore core(prog);
    const RunResult result = core.run(40000000);
    ASSERT_TRUE(result.exited) << "did not terminate";
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_FALSE(result.output.empty()); // checksum printed
    // Within 3x of the dynamic-length target either way.
    EXPECT_GT(result.dynInsts, spec.targetDynInsts / 3);
    EXPECT_LT(result.dynInsts, spec.targetDynInsts * 3);
    // Memory-operation density in the band MFI's "~30%" story needs.
    const double memFrac =
        double(result.loads + result.stores) / double(result.dynInsts);
    EXPECT_GT(memFrac, 0.08) << "too few memory ops";
    EXPECT_LT(memFrac, 0.55) << "too many memory ops";
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadRun,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "gzip",
                      "mcf", "parser", "perlbmk", "twolf", "vortex",
                      "vpr"),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace dise
