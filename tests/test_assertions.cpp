/**
 * @file
 * Watchpoint/assertion ACF tests: stores elsewhere take the DISE-branch
 * fast path, stores to the watched cell are value-checked, violations
 * trap, and the assertion adds zero cost when deactivated.
 */

#include <gtest/gtest.h>

#include "src/acf/assertions.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/dise/controller.hpp"

namespace dise {
namespace {

Program
watchProgram(int64_t value, const char *target)
{
    return assemble(strFormat(".text\n"
                              "main:\n"
                              "    laq buf, t5\n"
                              "    li %lld, t0\n"
                              "    stq t0, %s(t5)\n"
                              "    li 0, v0\n    li 0, a0\n"
                              "    syscall\n"
                              "error:\n"
                              "    li 0, v0\n    li 42, a0\n"
                              "    syscall\n"
                              ".data\n"
                              "buf:\n    .quad 0, 0\n",
                              (long long)value, target));
}

RunResult
runWatched(const Program &prog, Addr watched, uint64_t bound)
{
    WatchpointOptions opts;
    auto set = std::make_shared<ProductionSet>(
        makeWatchpointProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initWatchpointRegisters(core, watched, bound);
    return core.run(10000);
}

TEST(Watchpoint, InBoundsStorePasses)
{
    const Program prog = watchProgram(7, "0");
    const RunResult r = runWatched(prog, prog.symbol("buf"), 10);
    EXPECT_EQ(r.exitCode, 0);
}

TEST(Watchpoint, ViolationTraps)
{
    const Program prog = watchProgram(11, "0");
    const RunResult r = runWatched(prog, prog.symbol("buf"), 10);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(Watchpoint, BoundaryValuePasses)
{
    const Program prog = watchProgram(10, "0");
    EXPECT_EQ(runWatched(prog, prog.symbol("buf"), 10).exitCode, 0);
}

TEST(Watchpoint, OtherAddressesTakeTheFastPath)
{
    // Store to buf+8 while watching buf: the over-bound value must NOT
    // trap, and the value-check instructions must be skipped (the
    // expansion retires 4 of its 6 slots thanks to the DISE branch).
    const Program prog = watchProgram(999, "8");
    WatchpointOptions opts;
    auto set = std::make_shared<ProductionSet>(
        makeWatchpointProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initWatchpointRegisters(core, prog.symbol("buf"), 10);
    const RunResult r = core.run(10000);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.expansions, 1u);
    // Slots executed: lda, cmpeq, dbeq, T.INSN -> 3 inserted.
    EXPECT_EQ(r.diseInsts, 3u);
}

TEST(Watchpoint, WatchedStoreRunsFullCheck)
{
    const Program prog = watchProgram(7, "0");
    WatchpointOptions opts;
    auto set = std::make_shared<ProductionSet>(
        makeWatchpointProductions(prog, opts));
    DiseController controller;
    controller.install(set);
    ExecCore core(prog, &controller);
    initWatchpointRegisters(core, prog.symbol("buf"), 10);
    const RunResult r = core.run(10000);
    EXPECT_EQ(r.exitCode, 0);
    // All five inserted slots retired.
    EXPECT_EQ(r.diseInsts, 5u);
    EXPECT_EQ(core.memory().readQuad(prog.symbol("buf")), 7u);
}

TEST(Watchpoint, DisplacedStoreAddressesAreComputed)
{
    // The effective address (base + displacement) decides the match,
    // not the base register alone: watch buf+8, store to 8(t5).
    const Program prog = watchProgram(999, "8");
    const RunResult r = runWatched(prog, prog.symbol("buf") + 8, 10);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(Watchpoint, DeactivationRemovesAllCost)
{
    const Program prog = watchProgram(999, "0");
    DiseController controller;
    controller.install(std::make_shared<ProductionSet>(
        makeWatchpointProductions(prog, WatchpointOptions{})));
    controller.deactivate();
    ExecCore core(prog, &controller);
    const RunResult r = core.run(10000);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.expansions, 0u);
    EXPECT_EQ(r.diseInsts, 0u);
}

} // namespace
} // namespace dise
