/**
 * @file
 * Path-profiler ACF tests: arithmetic direction capture for every
 * conditional-branch opcode, history accumulation across expansions via
 * the persistent dedicated registers, endpoint records with the T.PC
 * directive, and transparency (profiled runs produce identical
 * application results).
 */

#include <gtest/gtest.h>

#include "src/acf/profiler.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/dise/controller.hpp"
#include "src/workloads/workloads.hpp"

namespace dise {
namespace {

/** Run a program under the profiler; returns (records, core output). */
std::pair<std::vector<PathRecord>, RunResult>
profile(const Program &prog)
{
    DiseController controller;
    controller.install(std::make_shared<ProductionSet>(
        makePathProfilerProductions()));
    ExecCore core(prog, &controller);
    initProfilerRegisters(core, prog.symbol("pbuf"));
    RunResult result = core.run(10000000);
    return {readPathProfile(core, prog.symbol("pbuf")), result};
}

const char *kTail = "    li 0, v0\n    li 0, a0\n    syscall\n"
                    ".data\npbuf:\n    .space 4096\n";

TEST(Profiler, CapturesBranchOutcomeBits)
{
    // Function with three conditional branches on known data:
    //   beq t0(=0)  -> taken    (1)
    //   bne t1(=0)  -> not taken(0)
    //   blt t2(=-1) -> taken    (1)
    // History at the return must read 0b101.
    const Program prog = assemble(std::string(".text\n"
                                              "main:\n"
                                              "    call f\n") +
                                  kTail +
                                  ".text\n"
                                  "f:\n"
                                  "    li 0, t0\n"
                                  "    li 0, t1\n"
                                  "    li -1, t2\n"
                                  "    beq t0, L1\n"
                                  "    nop\n"
                                  "L1:\n"
                                  "    bne t1, L2\n"
                                  "    nop\n"
                                  "L2:\n"
                                  "    blt t2, L3\n"
                                  "    nop\n"
                                  "L3:\n"
                                  "    ret\n");
    const auto [records, result] = profile(prog);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].history, 0b101u);
    EXPECT_EQ(records[0].endpointPC, prog.symbol("L3"));
}

/** Direction capture for every conditional opcode, both outcomes. */
struct DirCase
{
    const char *branch;
    int64_t value;
    uint64_t expected;
};

class ProfilerDirections : public ::testing::TestWithParam<DirCase>
{
};

TEST_P(ProfilerDirections, ArithmeticDirectionMatchesBranch)
{
    const DirCase c = GetParam();
    const Program prog = assemble(
        std::string(".text\nmain:\n    call f\n") + kTail +
        strFormat(".text\nf:\n"
                  "    li %lld, t0\n"
                  "    %s t0, L\n"
                  "    nop\n"
                  "L:\n"
                  "    ret\n",
                  (long long)c.value, c.branch));
    const auto [records, result] = profile(prog);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].history, c.expected)
        << c.branch << " of " << c.value;
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, ProfilerDirections,
    ::testing::Values(DirCase{"beq", 0, 1}, DirCase{"beq", 5, 0},
                      DirCase{"bne", 0, 0}, DirCase{"bne", 5, 1},
                      DirCase{"blt", -1, 1}, DirCase{"blt", 1, 0},
                      DirCase{"bge", -1, 0}, DirCase{"bge", 0, 1},
                      DirCase{"ble", 0, 1}, DirCase{"ble", 2, 0},
                      DirCase{"bgt", 2, 1}, DirCase{"bgt", 0, 0},
                      DirCase{"blbs", 3, 1}, DirCase{"blbs", 2, 0},
                      DirCase{"blbc", 2, 1}, DirCase{"blbc", 3, 0}));

TEST(Profiler, HistoryResetsAtEachEndpoint)
{
    // Two calls to a function whose single branch alternates.
    const Program prog =
        assemble(std::string(".text\n"
                             "main:\n"
                             "    li 0, t0\n"
                             "    call f\n"
                             "    li 1, t0\n"
                             "    call f\n") +
                 kTail +
                 ".text\n"
                 "f:\n"
                 "    beq t0, L\n"
                 "    nop\n"
                 "L:\n"
                 "    ret\n");
    const auto [records, result] = profile(prog);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].history, 1u); // t0 == 0: taken
    EXPECT_EQ(records[1].history, 0u); // t0 == 1: not taken
    EXPECT_EQ(records[0].endpointPC, records[1].endpointPC);
}

TEST(Profiler, LoopPathAccumulatesPerIteration)
{
    // A counted loop inside a function: history is one bit per
    // iteration's loop-back branch plus the final not-taken bit.
    const Program prog = assemble(std::string(".text\n"
                                              "main:\n"
                                              "    call f\n") +
                                  kTail +
                                  ".text\n"
                                  "f:\n"
                                  "    li 3, t0\n"
                                  "L:\n"
                                  "    subq t0, 1, t0\n"
                                  "    bne t0, L\n"
                                  "    ret\n");
    const auto [records, result] = profile(prog);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_EQ(records.size(), 1u);
    // bne outcomes: taken, taken, not-taken -> 0b110.
    EXPECT_EQ(records[0].history, 0b110u);
}

TEST(Profiler, TransparencyOnRealWorkload)
{
    WorkloadSpec spec = workloadSpec("parser");
    spec.targetDynInsts = 60000;
    spec.kernelIters = 200;
    Program prog = buildWorkload(spec);
    // The profiler needs a buffer; append one by rebuilding with space.
    const std::string src =
        generateWorkloadSource(spec) + "\npbuf:\n    .space 1048576\n";
    prog = assemble(src);

    ExecCore native(prog);
    const RunResult ref = native.run(10000000);
    ASSERT_EQ(ref.exitCode, 0);

    const auto [records, result] = profile(prog);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(result.output, ref.output);
    EXPECT_GT(records.size(), 10u); // every generated function returns
    for (const auto &record : records)
        EXPECT_TRUE(prog.inText(record.endpointPC));
}

TEST(Profiler, RecordsAreWellFormed)
{
    const Program prog = assemble(std::string(".text\n"
                                              "main:\n"
                                              "    call f\n"
                                              "    call f\n") +
                                  kTail +
                                  ".text\nf:\n    ret\n");
    const auto [records, result] = profile(prog);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_EQ(records.size(), 2u);
    // Both endpoints are the ret's PC + 4 (T.PC tags the trigger).
    EXPECT_EQ(records[0].endpointPC, prog.symbol("f"));
}

} // namespace
} // namespace dise
