/**
 * @file
 * Serialization tests: production sets render to DSL text that parses
 * back to a behaviourally identical set — the external-representation
 * round trip of the controller interface (Section 2.3).
 */

#include <gtest/gtest.h>

#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/profiler.hpp"
#include "src/acf/tracing.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/dise/parser.hpp"
#include "src/dise/serialize.hpp"
#include "src/sim/core.hpp"

namespace dise {
namespace {

/** Behavioural equality: identical expansion of a probe instruction. */
void
expectSameExpansion(const ProductionSet &a, const ProductionSet &b,
                    const DecodedInst &probe, Addr pc)
{
    const auto ida = a.match(probe);
    const auto idb = b.match(probe);
    ASSERT_EQ(ida.has_value(), idb.has_value());
    if (!ida)
        return;
    const ReplacementSeq *sa = a.sequence(*ida);
    const ReplacementSeq *sb = b.sequence(*idb);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    const auto ia = instantiateSeq(*sa, probe, pc);
    const auto ib = instantiateSeq(*sb, probe, pc);
    ASSERT_EQ(ia.size(), ib.size());
    for (size_t i = 0; i < ia.size(); ++i)
        EXPECT_EQ(ia[i], ib[i]) << "slot " << i;
}

TEST(Serialize, MfiRoundTrip)
{
    const Program prog = assemble(
        ".text\nmain:\n    nop\nerror:\n    nop\n");
    MfiOptions opts;
    const ProductionSet original = makeMfiProductions(prog, opts);
    const std::string dsl = serializeProductions(original);
    const ProductionSet back = parseProductions(dsl);

    EXPECT_EQ(back.productions().size(), original.productions().size());
    for (const Word w :
         {makeMemory(Opcode::LDQ, 3, 7, 16),
          makeMemory(Opcode::STB, 1, 30, -8), makeJump(Opcode::RET, 31,
                                                       26)}) {
        expectSameExpansion(original, back, decode(w), 0x4000100);
    }
}

TEST(Serialize, TracingRoundTrip)
{
    const ProductionSet original = makeTracingProductions();
    const ProductionSet back =
        parseProductions(serializeProductions(original));
    expectSameExpansion(original, back,
                        decode(makeMemory(Opcode::STQ, 5, 9, 24)),
                        0x4000200);
}

TEST(Serialize, ProfilerRoundTrip)
{
    const ProductionSet original = makePathProfilerProductions();
    const ProductionSet back =
        parseProductions(serializeProductions(original));
    for (const Word w :
         {makeBranch(Opcode::BEQ, 4, -12), makeBranch(Opcode::BLBS, 7, 3),
          makeJump(Opcode::RET, 31, 26)}) {
        expectSameExpansion(original, back, decode(w), 0x4000300);
    }
}

TEST(Serialize, TaggedDictionaryRoundTrip)
{
    // Compression dictionaries use explicit tagging; the "@id" headers
    // must pin sequence ids so tag arithmetic survives.
    std::string src = ".text\nmain:\n    laq buf, t5\n";
    for (int i = 0; i < 4; ++i) {
        src += "    ldq t0, 0(t5)\n    addq t0, 3, t0\n"
               "    stq t0, 0(t5)\n    nop\n";
    }
    src += "    li 0, v0\n    li 0, a0\n    syscall\n"
           ".data\nbuf:\n    .quad 0\n";
    const Program prog = assemble(src);
    const auto comp = compressProgram(prog);
    ASSERT_GT(comp.dictEntries, 0u);

    const ProductionSet back =
        parseProductions(serializeProductions(*comp.dictionary));
    for (uint32_t tag = 0; tag < comp.dictEntries; ++tag) {
        // Probe with the actual codewords from the compressed text.
        for (const Word w : comp.compressed.text) {
            const DecodedInst inst = decode(w);
            if (inst.isCodeword() && inst.tag == tag) {
                expectSameExpansion(*comp.dictionary, back, inst,
                                    0x4000400);
                break;
            }
        }
    }
}

TEST(Serialize, RoundTrippedSetRunsIdentically)
{
    // End to end: run a program under the original and the round-tripped
    // production set; results must match exactly.
    const Program prog = assemble(".text\n"
                                  "main:\n"
                                  "    laq buf, t5\n"
                                  "    li 9, t0\n"
                                  "    stq t0, 0(t5)\n"
                                  "    ldq t1, 0(t5)\n"
                                  "    mov t1, a0\n    li 2, v0\n"
                                  "    syscall\n"
                                  "    li 0, v0\n    li 0, a0\n"
                                  "    syscall\n"
                                  "error:\n"
                                  "    li 0, v0\n    li 42, a0\n"
                                  "    syscall\n"
                                  ".data\nbuf:\n    .quad 0\n");
    MfiOptions opts;
    const ProductionSet original = makeMfiProductions(prog, opts);
    const ProductionSet back =
        parseProductions(serializeProductions(original));

    auto runWith = [&](const ProductionSet &set) {
        DiseController controller;
        controller.install(std::make_shared<ProductionSet>(set));
        ExecCore core(prog, &controller);
        initMfiRegisters(core, prog);
        return core.run(10000);
    };
    const RunResult a = runWith(original);
    const RunResult b = runWith(back);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.expansions, b.expansions);
}

TEST(Serialize, SandboxHasNoDslSpelling)
{
    const Program prog = assemble(".text\nmain:\n    nop\n");
    MfiOptions opts;
    opts.variant = MfiVariant::Sandbox;
    const ProductionSet sandbox = makeMfiProductions(prog, opts);
    EXPECT_THROW(serializeProductions(sandbox), FatalError);
}

TEST(Serialize, SequenceRendering)
{
    const ProductionSet set = parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    dbne $dr1, +2\n"
        "    T.INSN\n");
    const std::string text =
        serializeSequence(set.sequences().begin()->second);
    EXPECT_NE(text.find("srl T.RS, #26, $dr1"), std::string::npos);
    EXPECT_NE(text.find("T.INSN"), std::string::npos);
}

TEST(Serialize, ExplicitIdHeaderParses)
{
    const ProductionSet set = parseProductions(
        "D7@107: T.INSN\n"
        "P1: op == res0 -> tag+100\n");
    const DecodedInst cw = decode(makeCodeword(Opcode::RES0, 7, 0, 0, 0));
    const auto id = set.match(cw);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, 107u);
    EXPECT_NE(set.sequence(107), nullptr);
}

TEST(Serialize, ExplicitAndFreshIdsCoexist)
{
    const ProductionSet set = parseProductions(
        "R1: T.INSN\n"      // fresh id, must not collide with 1 below
        "D0@1: T.INSN\n"
        "P1: class == load -> R1\n"
        "P2: op == res0 -> tag+1\n");
    EXPECT_TRUE(
        set.match(decode(makeMemory(Opcode::LDQ, 1, 2, 0))).has_value());
    EXPECT_TRUE(
        set.match(decode(makeCodeword(Opcode::RES0, 0, 0, 0, 0)))
            .has_value());
}

/** Property: random transparent production sets round-trip. */
class SerializeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SerializeProperty, RandomTransparentSetsRoundTrip)
{
    Rng rng(GetParam() * 31337 + 5);
    ProductionSet set;
    const int numSeqs = 1 + int(rng.below(3));
    std::vector<SeqId> ids;
    for (int s = 0; s < numSeqs; ++s) {
        ReplacementSeq seq;
        seq.name = "R" + std::to_string(s);
        const int len = 1 + int(rng.below(4));
        for (int i = 0; i < len; ++i) {
            ReplacementInst rinst;
            switch (rng.below(4)) {
              case 0:
                rinst = rTriggerInsn();
                break;
              case 1: // operate with role directives
                rinst.templ.op = Opcode::ADDQ;
                rinst.templ.cls = OpClass::IntAlu;
                rinst.raDir = RegDirective::TriggerRS;
                rinst.templ.rb = static_cast<RegIndex>(
                    kDiseRegBase + rng.below(8));
                rinst.rcDir = RegDirective::TriggerRD;
                break;
              case 2: // memory through a dedicated register
                rinst.templ.op = Opcode::STQ;
                rinst.templ.cls = OpClass::Store;
                rinst.raDir = RegDirective::TriggerRT;
                rinst.templ.rb = static_cast<RegIndex>(
                    kDiseRegBase + rng.below(8));
                rinst.immDir = ImmDirective::TriggerImm;
                break;
              default: // dedicated-register arithmetic
                rinst.templ.op = Opcode::XOR;
                rinst.templ.cls = OpClass::IntAlu;
                rinst.templ.ra = static_cast<RegIndex>(
                    kDiseRegBase + rng.below(8));
                rinst.templ.useLit = true;
                rinst.templ.imm = static_cast<int64_t>(rng.below(256));
                rinst.templ.rc = rinst.templ.ra;
                break;
            }
            seq.insts.push_back(rinst);
        }
        ids.push_back(set.addSequence(seq));
    }
    const OpClass classes[] = {OpClass::Load, OpClass::Store,
                               OpClass::IntMult, OpClass::Return};
    for (int p = 0; p < 3; ++p) {
        PatternSpec pattern;
        pattern.opclass = classes[rng.below(4)];
        if (rng.chance(0.3))
            pattern.rs = static_cast<RegIndex>(rng.below(31));
        set.addPattern(pattern, ids[rng.below(ids.size())]);
    }

    const ProductionSet back =
        parseProductions(serializeProductions(set));
    for (const Word probe :
         {makeMemory(Opcode::LDQ, 3, 7, 16),
          makeMemory(Opcode::STQ, 1, 30, -8),
          makeOperate(Opcode::MULQ, 1, 2, 3),
          makeJump(Opcode::RET, 31, 26)}) {
        expectSameExpansion(set, back, decode(probe), 0x4000500);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty,
                         ::testing::Range(0, 20));

} // namespace
} // namespace dise
