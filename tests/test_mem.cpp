/**
 * @file
 * Memory image and cache tests: sparse memory semantics, LRU
 * replacement, associativity, write-back traffic, the perfect-cache
 * mode, and the two-level hierarchy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <map>
#include <random>
#include <vector>

#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/memory.hpp"

namespace dise {
namespace {

TEST(Memory, UnwrittenReadsZero)
{
    Memory mem;
    EXPECT_EQ(mem.read(0x12345678, 8), 0u);
    EXPECT_EQ(mem.pagesTouched(), 0u);
}

TEST(Memory, ByteReadWrite)
{
    Memory mem;
    mem.writeByte(100, 0xab);
    EXPECT_EQ(mem.readByte(100), 0xab);
    EXPECT_EQ(mem.readByte(101), 0);
}

TEST(Memory, LittleEndianMultiByte)
{
    Memory mem;
    mem.write(0x1000, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.readByte(0x1000), 0x88);
    EXPECT_EQ(mem.readByte(0x1007), 0x11);
    EXPECT_EQ(mem.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(mem.read(0x1004, 4), 0x11223344u);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    const Addr addr = Memory::kPageSize - 4;
    mem.write(addr, 0xdeadbeefcafef00dULL, 8);
    EXPECT_EQ(mem.read(addr, 8), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.pagesTouched(), 2u);
}

TEST(Memory, LoadProgram)
{
    const Program prog = assemble(
        ".text\n    nop\n    syscall\n.data\nx:\n    .quad 42\n");
    Memory mem;
    mem.loadProgram(prog);
    EXPECT_EQ(mem.readWord(prog.textBase + 4), prog.text[1]);
    EXPECT_EQ(mem.readQuad(prog.symbol("x")), 42u);
}

TEST(Memory, ChecksumDetectsChanges)
{
    Memory mem;
    const uint64_t empty = mem.checksum(0, 64);
    mem.writeByte(10, 1);
    EXPECT_NE(mem.checksum(0, 64), empty);
}

CacheParams
smallCache(uint32_t sizeBytes, uint32_t assoc)
{
    CacheParams params;
    params.name = "test";
    params.sizeBytes = sizeBytes;
    params.assoc = assoc;
    params.lineBytes = 64;
    params.hitLatency = 1;
    return params;
}

TEST(Cache, HitAfterFill)
{
    Cache cache(smallCache(1024, 2), nullptr, 100);
    EXPECT_GT(cache.access(0, false), 1u); // cold miss
    EXPECT_EQ(cache.access(0, false), 1u); // hit
    EXPECT_EQ(cache.access(63, false), 1u); // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.accesses(), 3u);
}

TEST(Cache, MissLatencyIncludesMemory)
{
    Cache cache(smallCache(1024, 2), nullptr, 100);
    EXPECT_EQ(cache.access(0, false), 101u);
}

TEST(Cache, LruReplacementWithinSet)
{
    // 2-way, 8 sets: lines 0, 8, 16 map to set 0.
    Cache cache(smallCache(1024, 2), nullptr, 100);
    cache.access(0 * 64 * 8, false);
    cache.access(1 * 64 * 8 , false);
    cache.access(0, false);              // touch line 0 (now MRU)
    cache.access(2 * 64 * 8, false);     // evicts line at 8*64
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(64 * 8));
    EXPECT_TRUE(cache.probe(2 * 64 * 8));
}

TEST(Cache, DirectMappedConflicts)
{
    Cache cache(smallCache(512, 1), nullptr, 100); // 8 sets
    cache.access(0, false);
    cache.access(64 * 8, false); // same set, evicts
    EXPECT_FALSE(cache.probe(0));
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, CapacityHoldsWorkingSet)
{
    // 4KB, 2-way: 64 lines; a 32-line working set must all stick.
    Cache cache(smallCache(4096, 2), nullptr, 100);
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < 32; ++i)
            cache.access(uint64_t(i) * 64, false);
    EXPECT_EQ(cache.misses(), 32u); // cold only
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache l2(smallCache(4096, 2), nullptr, 100);
    Cache l1(smallCache(512, 1), &l2, 100);
    l1.access(0, true);       // dirty
    l1.access(64 * 8, false); // evicts dirty line -> writeback to L2
    EXPECT_EQ(l1.stats().get("writebacks"), 1u);
    EXPECT_GE(l2.stats().get("writes"), 1u);
}

TEST(Cache, PerfectCacheNeverMisses)
{
    CacheParams params = smallCache(0, 1);
    Cache cache(params, nullptr, 100);
    for (uint64_t a = 0; a < 100; ++a)
        EXPECT_EQ(cache.access(a * 4096, false), params.hitLatency);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_TRUE(cache.probe(0xdeadbeef));
}

TEST(Cache, InvalidateAll)
{
    Cache cache(smallCache(1024, 2), nullptr, 100);
    cache.access(0, false);
    cache.invalidateAll();
    EXPECT_FALSE(cache.probe(0));
}

TEST(Cache, InvalidateAllCountsDroppedWritebacks)
{
    // Dirty lines discarded by invalidateAll are lost store traffic;
    // the cache must account for them instead of dropping silently.
    Cache cache(smallCache(1024, 2), nullptr, 100);
    cache.access(0, true);    // dirty
    cache.access(64, true);   // dirty
    cache.access(128, false); // clean
    cache.invalidateAll();
    EXPECT_EQ(cache.stats().get("writebacks_dropped"), 2u);
    EXPECT_EQ(cache.stats().get("writebacks"), 0u); // not real writebacks
    // Nothing dirty remains: a second invalidate adds nothing.
    cache.invalidateAll();
    EXPECT_EQ(cache.stats().get("writebacks_dropped"), 2u);
}

TEST(Cache, MissRate)
{
    Cache cache(smallCache(1024, 2), nullptr, 100);
    cache.access(0, false);
    cache.access(0, false);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(Hierarchy, L2BacksBothL1s)
{
    MemHierarchyParams params;
    params.l1iSize = 1024;
    params.l1dSize = 1024;
    params.l2Size = 64 * 1024;
    MemHierarchy mem(params);
    // I-fetch warms L2; a D-access to the same line hits in L2.
    const uint32_t cold = mem.fetchAccess(0x4000);
    EXPECT_EQ(cold, 1u + 10u + 100u);
    const uint32_t dmiss = mem.dataAccess(0x4000, false);
    EXPECT_EQ(dmiss, 1u + 10u); // L1 miss, L2 hit
    EXPECT_EQ(mem.dataAccess(0x4000, false), 1u);
}

TEST(Hierarchy, PerfectICacheConfig)
{
    MemHierarchyParams params;
    params.l1iSize = 0;
    MemHierarchy mem(params);
    EXPECT_EQ(mem.fetchAccess(0x123456), params.l1Latency);
    EXPECT_TRUE(mem.icache().isPerfect());
}

/**
 * Differential test for the in-page memcpy and page-pointer translation
 * fast paths: every multi-byte access must behave exactly like a
 * byte-at-a-time loop, including page-crossing and unaligned accesses
 * and pages whose numbers collide in the direct-mapped translation
 * cache (multiples of 64 pages apart).
 */
TEST(Memory, RandomizedDifferentialVsByteModel)
{
    std::mt19937_64 rng(0xd15ec0de);
    Memory mem;
    std::map<Addr, uint8_t> ref; // unwritten bytes read as zero

    // Address pool deliberately stresses the fast-path edge cases:
    // page-boundary straddles, odd alignments, and translation-cache
    // aliasing pairs (page numbers differing by multiples of 64).
    const uint64_t basePages[] = {3, 3 + 64, 3 + 128, 7, 7 + 64,
                                  1000, 1000 + 192};
    std::vector<Addr> pool;
    for (uint64_t pn : basePages) {
        const Addr page = pn << Memory::kPageShift;
        for (int d = -9; d <= 9; ++d)
            pool.push_back(page + Memory::kPageSize / 2 + d);
        for (int d = -9; d < 9; ++d)
            pool.push_back(page + ((d < 0) ? Memory::kPageSize + d : d));
    }

    const unsigned sizes[] = {1, 2, 4, 8};
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = pool[rng() % pool.size()];
        const unsigned size = sizes[rng() % 4];
        if (rng() & 1) {
            const uint64_t value = rng();
            mem.write(addr, value, size);
            for (unsigned b = 0; b < size; ++b)
                ref[addr + b] = uint8_t(value >> (8 * b));
        } else {
            uint64_t expect = 0;
            for (unsigned b = 0; b < size; ++b) {
                const auto it = ref.find(addr + b);
                const uint8_t byte = (it == ref.end()) ? 0 : it->second;
                expect |= uint64_t(byte) << (8 * b);
            }
            ASSERT_EQ(mem.read(addr, size), expect)
                << "addr 0x" << std::hex << addr << " size " << size;
        }
    }

    // Full sweep: the byte accessors and the multi-byte accessors must
    // agree with the reference model everywhere it has state.
    for (const auto &[addr, byte] : ref)
        ASSERT_EQ(mem.readByte(addr), byte);
}

TEST(Memory, TranslationCacheAliasingPages)
{
    // kTransEntries = 64: page numbers 5 and 69 share a cache slot.
    Memory mem;
    const Addr a = Addr(5) << Memory::kPageShift;
    const Addr b = Addr(5 + 64) << Memory::kPageShift;
    mem.write(a, 0x1111111111111111ULL, 8);
    mem.write(b, 0x2222222222222222ULL, 8);
    // Ping-pong: each access evicts the other page's translation.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(mem.read(a, 8), 0x1111111111111111ULL);
        EXPECT_EQ(mem.read(b, 8), 0x2222222222222222ULL);
    }
    // A write through a re-filled translation entry must land.
    mem.write(a + 16, 0x33, 1);
    EXPECT_EQ(mem.read(b + 16, 1), 0u);
    EXPECT_EQ(mem.read(a + 16, 1), 0x33u);
}

/** Plain associative-LRU write-back model, no MRU shortcut. */
struct RefLruCache
{
    struct Line
    {
        uint64_t tag;
        bool dirty;
    };
    uint32_t numSets, assoc, lineBytes;
    std::vector<std::list<Line>> sets; // front = MRU, back = LRU
    uint64_t accesses = 0, misses = 0, writebacks = 0;

    RefLruCache(uint32_t sizeBytes, uint32_t assoc_, uint32_t lineBytes_)
        : numSets(sizeBytes / (lineBytes_ * assoc_)), assoc(assoc_),
          lineBytes(lineBytes_), sets(numSets)
    {
    }

    void
    access(Addr addr, bool write)
    {
        ++accesses;
        const uint64_t la = addr / lineBytes;
        auto &set = sets[la % numSets];
        const uint64_t tag = la / numSets;
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == tag) {
                it->dirty |= write;
                set.splice(set.begin(), set, it);
                return;
            }
        }
        ++misses;
        if (set.size() == assoc) {
            if (set.back().dirty)
                ++writebacks;
            set.pop_back();
        }
        set.push_front({tag, write});
    }
};

/**
 * The MRU-first probe in Cache::access is a pure lookup shortcut: hit,
 * miss, and writeback counts must match a reference LRU model with no
 * such shortcut on any access stream.
 */
TEST(Cache, MruShortcutStatsMatchReferenceLru)
{
    Cache cache(smallCache(2048, 4), nullptr, 100);
    RefLruCache ref(2048, 4, 64);

    std::mt19937_64 rng(0xcac4e);
    for (int i = 0; i < 50000; ++i) {
        Addr addr;
        if (rng() % 3 == 0) {
            addr = rng() % (16 * 1024); // conflict-heavy near range
        } else {
            // Bursty reuse: hammer one line to exercise the MRU probe.
            addr = (rng() % 8) * 64 + (rng() % 64);
        }
        const bool write = (rng() % 4) == 0;
        cache.access(addr, write);
        ref.access(addr, write);
    }

    EXPECT_EQ(cache.accesses(), ref.accesses);
    EXPECT_EQ(cache.misses(), ref.misses);
    EXPECT_EQ(cache.stats().get("writebacks"), ref.writebacks);
}

// ---- Copy-on-write forks and translation-cache coherence ----

/**
 * operator= adopts the source's pages; the destination's previously
 * cached page pointers reference its OLD image and must be dropped, in
 * both directions and for move-assignment too (the moved-from map's
 * storage is gone entirely).
 */
TEST(Memory, AssignmentInvalidatesTranslationCache)
{
    Memory a, b;
    a.write(0x5000, 0x1111, 8); // cache a's page 5 translation
    b.write(0x5000, 0x2222, 8); // cache b's page 5 translation
    ASSERT_EQ(a.read(0x5000, 8), 0x1111u);

    a = b; // a's cached pointer into its old page 5 is now stale
    EXPECT_EQ(a.read(0x5000, 8), 0x2222u);

    // Writes through a stale write-valid entry must not reach b.
    a.write(0x5000, 0x3333, 8);
    EXPECT_EQ(a.read(0x5000, 8), 0x3333u);
    EXPECT_EQ(b.read(0x5000, 8), 0x2222u);

    Memory c;
    c.write(0x5000, 0x4444, 8);
    c = std::move(b);
    EXPECT_EQ(c.read(0x5000, 8), 0x2222u);
    // The moved-from image is empty and its cache reset: accesses are
    // safe and see an untouched image.
    EXPECT_EQ(b.read(0x5000, 8), 0u);
    b.write(0x5000, 1, 1);
    EXPECT_EQ(b.read(0x5000, 1), 1u);
}

TEST(Memory, CopyConstructionInvalidatesTranslationCache)
{
    Memory a;
    a.write(0x7008, 0xabcd, 8); // warm a's cache (write-valid entry)
    Memory b(a);                // page 7 now shared
    // The source's write-valid entry was demoted: this write must
    // clone, not scribble on the shared page.
    a.write(0x7008, 0xef01, 8);
    EXPECT_EQ(a.read(0x7008, 8), 0xef01u);
    EXPECT_EQ(b.read(0x7008, 8), 0xabcdu);

    Memory d(std::move(a));
    EXPECT_EQ(d.read(0x7008, 8), 0xef01u);
    EXPECT_EQ(a.read(0x7008, 8), 0u); // moved-from: empty, cache reset
}

/** Write-after-fork isolation in both directions, including pages that
 *  alias in the translation cache and pages touched only post-fork. */
TEST(Memory, CowForkWriteIsolationBothDirections)
{
    Memory parent;
    const Addr pa = Addr(5) << Memory::kPageShift;
    const Addr pb = Addr(5 + 64) << Memory::kPageShift; // aliases pa
    parent.write(pa, 0x1111, 8);
    parent.write(pb, 0x2222, 8);

    Memory child(parent);
    EXPECT_EQ(child.read(pa, 8), 0x1111u);

    // Parent writes must not appear in the child...
    parent.write(pa, 0xAAAA, 8);
    EXPECT_EQ(parent.read(pa, 8), 0xAAAAu);
    EXPECT_EQ(child.read(pa, 8), 0x1111u);
    // ...and child writes must not appear in the parent.
    child.write(pb, 0xBBBB, 8);
    EXPECT_EQ(child.read(pb, 8), 0xBBBBu);
    EXPECT_EQ(parent.read(pb, 8), 0x2222u);

    // Pages allocated after the fork are private from birth.
    child.write(0x9000, 0xCC, 1);
    EXPECT_EQ(parent.read(0x9000, 1), 0u);
    parent.write(0xA000, 0xDD, 1);
    EXPECT_EQ(child.read(0xA000, 1), 0u);
}

/**
 * Randomized differential: a COW fork must be indistinguishable from a
 * deep copy under any interleaving of reads and writes on both images
 * — byte-exact against independent reference models, with fork points
 * mid-stream so forks inherit warm translation caches.
 */
TEST(Memory, RandomizedCowForkVsDeepCopyModel)
{
    std::mt19937_64 rng(0xf0c0f0c0);
    Memory images[2];
    std::map<Addr, uint8_t> ref[2]; // per-image byte model

    // Aliasing-prone pool, as in RandomizedDifferentialVsByteModel.
    const uint64_t basePages[] = {3, 3 + 64, 9, 9 + 128, 500};
    std::vector<Addr> pool;
    for (uint64_t pn : basePages) {
        const Addr page = pn << Memory::kPageShift;
        for (int d = -9; d <= 9; ++d)
            pool.push_back(page + Memory::kPageSize / 2 + d);
        pool.push_back(page);
        pool.push_back(page + Memory::kPageSize - 8);
    }

    const unsigned sizes[] = {1, 2, 4, 8};
    for (int i = 0; i < 30000; ++i) {
        const int which = int(rng() & 1);
        const Addr addr = pool[rng() % pool.size()];
        const unsigned size = sizes[rng() % 4];
        const uint64_t action = rng() % 100;
        if (action < 2) {
            // Fork one image over the other (both directions occur).
            images[which] = images[which ^ 1];
            ref[which] = ref[which ^ 1];
        } else if (action < 50) {
            const uint64_t value = rng();
            images[which].write(addr, value, size);
            for (unsigned b = 0; b < size; ++b)
                ref[which][addr + b] = uint8_t(value >> (8 * b));
        } else {
            uint64_t expect = 0;
            for (unsigned b = 0; b < size; ++b) {
                const auto it = ref[which].find(addr + b);
                expect |= uint64_t(it == ref[which].end() ? 0 : it->second)
                          << (8 * b);
            }
            ASSERT_EQ(images[which].read(addr, size), expect)
                << "image " << which << " addr 0x" << std::hex << addr
                << " size " << size << " iter " << std::dec << i;
        }
    }
    for (int which = 0; which < 2; ++which)
        for (const auto &[addr, byte] : ref[which])
            ASSERT_EQ(images[which].readByte(addr), byte) << which;
}

TEST(Hierarchy, GeometryValidation)
{
    CacheParams bad = smallCache(1000, 3); // not line*assoc multiple
    EXPECT_THROW((void)Cache(bad, nullptr, 100), PanicError);
}

} // namespace
} // namespace dise
