/**
 * @file
 * Trace-feed correctness tests: the batched retire-trace sink must be
 * a bit-identical replacement for step()-per-instruction delivery —
 * record-by-record at the ExecCore level, and cycles / buckets / every
 * registry stat at the PipelineSim level — across budgets expiring
 * mid-batch, snapshots at batch and sample boundaries, and sampled
 * runs. Also pins the inline fast register helpers the feed's hazard
 * walk uses to their out-of-line reference implementations over the
 * whole opcode space.
 */

#include <gtest/gtest.h>

#include "src/acf/mfi.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/stats.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/service/session.hpp"
#include "src/workloads/workloads.hpp"

namespace dise {
namespace {

const char *kEpilogue = "    li 0, v0\n    li 0, a0\n    syscall\n"
                        "error:\n"
                        "    li 0, v0\n    li 42, a0\n    syscall\n";

std::unique_ptr<DiseController>
mfiController(const Program &prog)
{
    auto controller = std::make_unique<DiseController>(DiseConfig{});
    controller->install(std::make_shared<const ProductionSet>(
        makeMfiProductions(prog, MfiOptions{})));
    return controller;
}

/**
 * Loads, stores (to a legal .data buffer — MFI checks them), a
 * multiply, a call/return pair, and a data-dependent branch that flips
 * direction as the stored value evolves: every DynInst field class and
 * both predictor outcomes get exercised.
 */
Program
mixedProgramWithHelper(int iters)
{
    return assemble(
        strFormat(".text\nmain:\n    laq buf, t5\n    li %d, t0\n",
                  iters) +
        "loop:\n"
        "    ldq t2, 0(t5)\n"
        "    mulq t2, 3, t3\n"
        "    stq t3, 0(t5)\n"
        "    cmplt t3, 100, t4\n"
        "    beq t4, skip\n"
        "    addq t6, 1, t6\n"
        "skip:\n"
        "    bsr ra, helper\n"
        "    subq t0, 1, t0\n"
        "    bne t0, loop\n" +
        std::string(kEpilogue) +
        "helper:\n"
        "    xor t7, t6, t7\n"
        "    ret\n"
        ".data\nbuf:\n    .quad 1\n");
}

bool
sameRecord(const DynInst &a, const DynInst &b)
{
    // Field-wise, not encode(): DISE-synthesized instructions use
    // dedicated registers that have no application encoding.
    return a.pc == b.pc && a.memAddr == b.memAddr &&
           a.actualTarget == b.actualTarget &&
           a.inst.op == b.inst.op && a.inst.cls == b.inst.cls &&
           a.inst.ra == b.inst.ra && a.inst.rb == b.inst.rb &&
           a.inst.rc == b.inst.rc && a.inst.useLit == b.inst.useLit &&
           a.inst.imm == b.inst.imm && a.inst.tag == b.inst.tag &&
           a.inst.raw == b.inst.raw && a.missPenalty == b.missPenalty &&
           a.disepc == b.disepc && a.seqLen == b.seqLen &&
           a.diseTarget == b.diseTarget &&
           a.seqPredClass == b.seqPredClass &&
           a.expanded == b.expanded && a.triggerSlot == b.triggerSlot &&
           a.firstOfSeq == b.firstOfSeq && a.lastOfSeq == b.lastOfSeq &&
           a.ptMiss == b.ptMiss && a.rtMiss == b.rtMiss &&
           a.isAppControl == b.isAppControl && a.taken == b.taken &&
           a.isMem == b.isMem && a.isStore == b.isStore &&
           a.isSyscall == b.isSyscall;
}

/** Drain a core through fillTrace with the given ring capacity. */
std::vector<DynInst>
drainViaFill(ExecCore &core, size_t cap)
{
    std::vector<DynInst> out;
    std::vector<DynInst> ring(cap);
    while (true) {
        const size_t n = core.fillTrace(ring.data(), cap);
        if (n == 0)
            break;
        out.insert(out.end(), ring.begin(), ring.begin() + n);
    }
    return out;
}

std::vector<DynInst>
drainViaStep(ExecCore &core)
{
    std::vector<DynInst> out;
    DynInst dyn;
    while (core.step(dyn))
        out.push_back(dyn);
    return out;
}

void
expectSameStream(const Program &prog, bool mfi, size_t ringCap)
{
    std::unique_ptr<DiseController> cf, cs;
    if (mfi) {
        cf = mfiController(prog);
        cs = mfiController(prog);
    }
    ExecCore feed(prog, cf.get());
    ExecCore step(prog, cs.get());
    if (mfi) {
        initMfiRegisters(feed, prog);
        initMfiRegisters(step, prog);
    }
    const std::vector<DynInst> a = drainViaFill(feed, ringCap);
    const std::vector<DynInst> b = drainViaStep(step);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(sameRecord(a[i], b[i]))
            << "record " << i << " pc 0x" << std::hex << a[i].pc
            << " vs 0x" << b[i].pc;
    }
    EXPECT_EQ(feed.result().dynInsts, step.result().dynInsts);
    EXPECT_EQ(feed.result().outcome, step.result().outcome);
}

TEST(TraceFeed, FillMatchesStepPlain)
{
    expectSameStream(mixedProgramWithHelper(300), false, 7);
}

TEST(TraceFeed, FillMatchesStepMfi)
{
    // Ring smaller than a replacement sequence forces mid-sequence
    // ring-full exits; a sequence must never be torn.
    expectSameStream(mixedProgramWithHelper(300), true, 3);
    expectSameStream(mixedProgramWithHelper(300), true, 64);
}

// ---------------------------------------------------------------------
// PipelineSim: feed vs step, full registry equality.
// ---------------------------------------------------------------------

/**
 * Full registry document minus the "sampling" group: its presence is
 * the one legitimate difference between a sampled run and its
 * full-detail reference (sampling fields are compared explicitly where
 * a test cares about them).
 */
std::string
registryDump(PipelineSim &sim)
{
    StatsRegistry reg;
    sim.registerStats(reg);
    const Json full = reg.toJson();
    Json doc = Json::object();
    for (const auto &kv : full.members()) {
        if (kv.first != "sampling")
            doc[kv.first] = kv.second;
    }
    return doc.dump();
}

struct TimingRun
{
    TimingResult t;
    std::string registry;
};

TimingRun
runPipeline(const Program &prog, bool traceFeed, bool mfi,
            uint64_t maxInsts = ~uint64_t(0), uint64_t maxCycles = 0,
            uint64_t period = 0, uint64_t detail = 0)
{
    std::unique_ptr<DiseController> controller;
    if (mfi)
        controller = mfiController(prog);
    PipelineParams params;
    params.mem.l1dSize = 2048; // small caches: real miss traffic
    params.mem.l1iSize = 2048;
    PipelineSim sim(prog, params, controller.get());
    sim.setTraceFeed(traceFeed);
    if (period != 0)
        sim.setSampling(period, detail);
    if (mfi)
        initMfiRegisters(sim.core(), prog);
    TimingRun run;
    run.t = sim.run(maxInsts, maxCycles);
    run.registry = registryDump(sim);
    return run;
}

void
expectSameTiming(const TimingRun &feed, const TimingRun &step)
{
    EXPECT_EQ(feed.t.cycles, step.t.cycles);
    EXPECT_EQ(feed.t.arch.dynInsts, step.t.arch.dynInsts);
    EXPECT_EQ(feed.t.arch.outcome, step.t.arch.outcome);
    EXPECT_EQ(feed.t.buckets.issue, step.t.buckets.issue);
    EXPECT_EQ(feed.t.buckets.imissStall, step.t.buckets.imissStall);
    EXPECT_EQ(feed.t.buckets.dmissStall, step.t.buckets.dmissStall);
    EXPECT_EQ(feed.t.buckets.branchFlush, step.t.buckets.branchFlush);
    EXPECT_EQ(feed.t.buckets.diseStall, step.t.buckets.diseStall);
    EXPECT_EQ(feed.t.buckets.hazard, step.t.buckets.hazard);
    EXPECT_EQ(feed.t.buckets.drain, step.t.buckets.drain);
    EXPECT_EQ(feed.t.mispredicts, step.t.mispredicts);
    EXPECT_EQ(feed.t.decodeRedirects, step.t.decodeRedirects);
    EXPECT_EQ(feed.t.diseMispredicts, step.t.diseMispredicts);
    EXPECT_EQ(feed.t.expansionStalls, step.t.expansionStalls);
    EXPECT_EQ(feed.t.missStallCycles, step.t.missStallCycles);
    EXPECT_EQ(feed.registry, step.registry);
}

TEST(TraceFeed, PipelineFeedMatchesStep)
{
    const Program prog = mixedProgramWithHelper(400);
    for (const bool mfi : {false, true}) {
        const TimingRun feed = runPipeline(prog, true, mfi);
        const TimingRun step = runPipeline(prog, false, mfi);
        ASSERT_EQ(feed.t.arch.outcome, RunOutcome::Exit);
        expectSameTiming(feed, step);
    }
}

TEST(TraceFeed, MaxInstsExpiresMidBatch)
{
    // 501 is not a multiple of any batch size: the feed must stop on
    // exactly the same instruction as the per-step reference.
    const Program prog = mixedProgramWithHelper(400);
    for (const uint64_t cap : {501ull, 63ull, 64ull, 65ull, 1ull}) {
        const TimingRun feed = runPipeline(prog, true, true, cap);
        const TimingRun step = runPipeline(prog, false, true, cap);
        ASSERT_EQ(feed.t.arch.dynInsts, cap);
        ASSERT_EQ(feed.t.arch.outcome, RunOutcome::Hang);
        expectSameTiming(feed, step);
    }
}

TEST(TraceFeed, MaxCyclesExpiresMidBatch)
{
    const Program prog = mixedProgramWithHelper(400);
    for (const uint64_t budget : {97ull, 501ull, 1999ull}) {
        const TimingRun feed =
            runPipeline(prog, true, true, ~uint64_t(0), budget);
        const TimingRun step =
            runPipeline(prog, false, true, ~uint64_t(0), budget);
        ASSERT_EQ(feed.t.arch.outcome, RunOutcome::Hang);
        expectSameTiming(feed, step);
    }
}

// ---------------------------------------------------------------------
// TimingSnapshot across batch and sample boundaries.
// ---------------------------------------------------------------------

TEST(TraceFeed, SnapshotMidBatchMatchesUninterrupted)
{
    const Program prog = mixedProgramWithHelper(400);
    const TimingRun want = runPipeline(prog, true, true);
    ASSERT_EQ(want.t.arch.outcome, RunOutcome::Exit);

    // Stop at instruction counts that land inside (501) and exactly on
    // (512) a feed batch, snapshot, restore into a fresh simulator,
    // finish there, and require the uninterrupted numbers.
    for (const uint64_t splitAt : {501ull, 512ull}) {
        auto controller = mfiController(prog);
        PipelineParams params;
        params.mem.l1dSize = 2048;
        params.mem.l1iSize = 2048;
        PipelineSim split(prog, params, controller.get());
        split.setTraceFeed(true);
        initMfiRegisters(split.core(), prog);
        const TimingResult mid = split.run(splitAt);
        ASSERT_EQ(mid.arch.outcome, RunOutcome::Hang);
        TimingSnapshot snap;
        split.saveSnapshot(snap);

        auto controller2 = mfiController(prog);
        PipelineSim fresh(prog, params, controller2.get());
        fresh.setTraceFeed(true);
        TimingRun got;
        fresh.restoreSnapshot(snap);
        got.t = fresh.run();
        got.registry = registryDump(fresh);
        expectSameTiming(got, want);
    }
}

TEST(TraceFeed, SnapshotAtSampleBoundaryMatchesUninterrupted)
{
    // No MFI here: a dyn-inst split point may land inside a replacement
    // sequence, where saveSnapshot (correctly) refuses to run. The
    // sampling phase machine is what's under test and is orthogonal.
    const Program prog = mixedProgramWithHelper(400);
    const uint64_t period = 300, detail = 100;
    const TimingRun want =
        runPipeline(prog, true, false, ~uint64_t(0), 0, period, detail);
    ASSERT_EQ(want.t.arch.outcome, RunOutcome::Exit);

    // Split exactly at a phase edge (detail -> warm at 100) and inside
    // a warm gap (170): the phase machine state must survive the
    // snapshot so the resumed run samples the same windows.
    for (const uint64_t splitAt : {100ull, 170ull, 350ull}) {
        PipelineParams params;
        params.mem.l1dSize = 2048;
        params.mem.l1iSize = 2048;
        PipelineSim split(prog, params);
        split.setTraceFeed(true);
        split.setSampling(period, detail);
        const TimingResult mid = split.run(splitAt);
        ASSERT_EQ(mid.arch.outcome, RunOutcome::Hang);
        TimingSnapshot snap;
        split.saveSnapshot(snap);

        PipelineSim fresh(prog, params);
        fresh.setTraceFeed(true);
        fresh.setSampling(period, detail);
        TimingRun got;
        fresh.restoreSnapshot(snap);
        got.t = fresh.run();
        got.registry = registryDump(fresh);
        expectSameTiming(got, want);
        EXPECT_EQ(got.t.sampling.sampledInsts, want.t.sampling.sampledInsts);
        EXPECT_EQ(got.t.sampling.warmedInsts, want.t.sampling.warmedInsts);
        EXPECT_EQ(got.t.sampling.measuredCycles,
                  want.t.sampling.measuredCycles);
    }
}

// ---------------------------------------------------------------------
// Sampling semantics.
// ---------------------------------------------------------------------

TEST(TraceFeed, SampledEqualsFullWhenFirstWindowCoversRun)
{
    // detail == period and period >= run length: every instruction is
    // timed in detail, so the "sampled" run IS the full run — same
    // cycles, same buckets, same registry.
    const Program prog = mixedProgramWithHelper(200);
    const TimingRun full = runPipeline(prog, true, true);
    ASSERT_EQ(full.t.arch.outcome, RunOutcome::Exit);
    const uint64_t huge = 1ull << 40;
    const TimingRun sampled =
        runPipeline(prog, true, true, ~uint64_t(0), 0, huge, huge);
    EXPECT_EQ(sampled.t.arch.outcome, RunOutcome::Exit);
    EXPECT_EQ(sampled.t.cycles, full.t.cycles);
    EXPECT_EQ(sampled.t.buckets.issue, full.t.buckets.issue);
    EXPECT_EQ(sampled.t.mispredicts, full.t.mispredicts);
    EXPECT_EQ(sampled.t.sampling.warmedInsts, 0u);
    EXPECT_EQ(sampled.t.sampling.sampledInsts, sampled.t.arch.dynInsts);
    EXPECT_EQ(sampled.t.estimatedCycles(), full.t.cycles);
    EXPECT_EQ(sampled.registry, full.registry);
}

TEST(TraceFeed, SampledRetirementMatchesFull)
{
    // Sampling changes timing only: the architectural stream (and
    // therefore retirement counts and the run outcome) is untouched.
    const Program prog = mixedProgramWithHelper(300);
    const TimingRun full = runPipeline(prog, true, true);
    const TimingRun sampled =
        runPipeline(prog, true, true, ~uint64_t(0), 0, 500, 100);
    EXPECT_EQ(sampled.t.arch.dynInsts, full.t.arch.dynInsts);
    EXPECT_EQ(sampled.t.arch.outcome, full.t.arch.outcome);
    EXPECT_EQ(sampled.t.sampling.sampledInsts +
                  sampled.t.sampling.warmedInsts,
              sampled.t.arch.dynInsts);
    EXPECT_LT(sampled.t.cycles, full.t.cycles);
}

/** Detail JSON with the wall-clock-dependent "host" section removed. */
Json
stripHost(const Json &detail)
{
    Json out = Json::object();
    for (const auto &kv : detail.members()) {
        if (kv.first != "host")
            out[kv.first] = kv.second;
    }
    return out;
}

TEST(TraceFeed, SampledBatchDeterministicAcrossWorkers)
{
    // The same sampled timing job must produce identical results under
    // --jobs 1 and --jobs 4 (sampling state is per-simulator, never
    // shared): run a 4-job batch serially and in parallel and compare
    // everything but the host section.
    std::vector<RunRequest> reqs(4);
    for (size_t i = 0; i < reqs.size(); ++i) {
        RunRequest &req = reqs[i];
        req.id = strFormat("sampled-%zu", i);
        req.workload = "bzip2";
        req.scale = 0.02;
        req.mode = RunMode::Timing;
        req.mfi = true;
        req.samplePeriod = 1000;
        req.sampleDetail = 200;
    }
    SessionConfig serial{1};
    SessionConfig parallel{4};
    const std::vector<RunResponse> a = SimSession(serial).runBatch(reqs);
    const std::vector<RunResponse> b =
        SimSession(parallel).runBatch(reqs);
    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].arch.dynInsts, b[i].arch.dynInsts);
        EXPECT_EQ(stripHost(a[i].detail).dump(),
                  stripHost(b[i].detail).dump());
        // And the batch is internally deterministic: same job, same
        // sampled result.
        EXPECT_EQ(a[i].cycles, a[0].cycles);
    }
    // The sampling section made it into the artifact entry.
    ASSERT_TRUE(a[0].detail.isObject());
    const Json &sampling = a[0].detail.at("sampling");
    EXPECT_EQ(sampling.at("period").asUInt(), 1000u);
    EXPECT_EQ(sampling.at("detail").asUInt(), 200u);
}

// ---------------------------------------------------------------------
// Fast register helpers: exhaustive equivalence.
// ---------------------------------------------------------------------

TEST(TraceFeed, FastRegHelpersMatchReferenceExhaustively)
{
    // The feed's hazard walk uses destRegFast()/srcRegListFast();
    // sweep every primary opcode with a dense pattern of operand
    // fields (registers, literal bit, function codes) and require
    // equality with the out-of-line reference on every decodable word.
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    uint64_t checked = 0;
    for (uint32_t op6 = 0; op6 < 64; ++op6) {
        for (uint32_t k = 0; k < 4096; ++k) {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            const Word w =
                (op6 << 26) | (Word(lcg >> 32) & 0x03ffffffu);
            const DecodedInst inst = decode(w);
            const RegIndex slowDest = inst.destReg();
            const RegIndex fastDest = inst.destRegFast();
            ASSERT_EQ(slowDest, fastDest)
                << strFormat("word 0x%08x: destReg %u vs fast %u", w,
                             unsigned(slowDest), unsigned(fastDest));
            const SrcRegList slow = inst.srcRegList();
            const SrcRegList fast = inst.srcRegListFast();
            ASSERT_EQ(slow.size(), fast.size())
                << strFormat("word 0x%08x", w);
            for (size_t s = 0; s < slow.size(); ++s) {
                ASSERT_EQ(slow.regs[s], fast.regs[s])
                    << strFormat("word 0x%08x src %zu", w, s);
            }
            ++checked;
        }
    }
    EXPECT_EQ(checked, 64u * 4096u);
}

} // namespace
} // namespace dise
