/**
 * @file
 * Compressor design-space ablations beyond Figure 7's feature bars:
 * candidate length cap, parameter-slot count, dictionary-entry byte
 * cost, and dictionary size cap. These quantify the design choices
 * DESIGN.md calls out (greedy selection with parameterized candidate
 * unification).
 */

#include "harness.hpp"

using namespace dise;
using namespace dise::bench;

int
main(int argc, char **argv)
{
    dise::bench::benchInit(argc, argv, "bench_compress_ablation");
    std::printf("==========================================================\n");
    std::printf("Compressor ablations (static size, geomean over suite)\n");
    std::printf("==========================================================\n\n");

    const auto specs = selectedSpecs();

    auto sweep = [&](const std::string &title,
                     const std::vector<std::pair<std::string,
                                                 CompressorOptions>>
                         &configs) {
        std::printf("-- %s --\n", title.c_str());
        std::vector<std::string> header = {"bench"};
        for (const auto &kv : configs)
            header.push_back(kv.first);
        TextTable table(header);
        std::map<std::string, std::vector<double>> g;
        struct Row
        {
            std::vector<std::string> cells;
            std::vector<double> ratios;
        };
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            Row row;
            row.cells = {spec.name};
            for (const auto &kv : configs) {
                const auto result = compressProgram(prog, kv.second);
                row.cells.push_back(TextTable::num(result.ratioWithDict()));
                row.ratios.push_back(result.ratioWithDict());
            }
            return row;
        });
        for (const Row &row : rows) {
            table.addRow(row.cells);
            for (size_t c = 0; c < configs.size(); ++c)
                g[configs[c].first].push_back(row.ratios[c]);
        }
        std::vector<std::string> mean = {"geomean"};
        for (const auto &kv : configs)
            mean.push_back(TextTable::num(geomean(g[kv.first])));
        table.addRow(mean);
        std::printf("%s\n", table.render().c_str());
    };

    // Candidate length cap.
    {
        std::vector<std::pair<std::string, CompressorOptions>> configs;
        for (const uint32_t len : {2u, 3u, 4u, 6u, 8u, 12u}) {
            CompressorOptions opts;
            opts.maxSeqLen = len;
            configs.emplace_back("len<=" + std::to_string(len), opts);
        }
        sweep("candidate length cap (ratio incl. dictionary)", configs);
    }

    // Parameter count.
    {
        std::vector<std::pair<std::string, CompressorOptions>> configs;
        for (const uint32_t params : {0u, 1u, 2u, 3u}) {
            CompressorOptions opts;
            opts.maxParams = params;
            opts.compressBranches = params > 0;
            configs.emplace_back(std::to_string(params) + "param",
                                 opts);
        }
        sweep("parameter slots per dictionary entry", configs);
    }

    // Dictionary entry cost sensitivity.
    {
        std::vector<std::pair<std::string, CompressorOptions>> configs;
        for (const uint32_t bytes : {4u, 8u, 12u, 16u}) {
            CompressorOptions opts;
            opts.dictEntryBytes = bytes;
            configs.emplace_back(std::to_string(bytes) + "B/entry",
                                 opts);
        }
        sweep("dictionary entry byte cost", configs);
    }

    // Dictionary size cap (tags available to the aware ACF).
    {
        std::vector<std::pair<std::string, CompressorOptions>> configs;
        for (const uint32_t entries : {16u, 64u, 256u, 2048u}) {
            CompressorOptions opts;
            opts.maxDictEntries = entries;
            configs.emplace_back("<=" + std::to_string(entries), opts);
        }
        sweep("dictionary entry cap", configs);
    }
    return 0;
}
