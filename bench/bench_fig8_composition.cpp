/**
 * @file
 * Figure 8 — composing decompression and fault isolation (Section 4.3).
 *
 * Panel A: the three implementable combinations across I-cache sizes,
 *   normalized to the unmodified program on the 32KB machine, perfect RT:
 *     rw+dedicated — binary-rewriting MFI, then dedicated-style
 *                    compression of the bloated binary
 *     rw+DISE      — binary-rewriting MFI, then full DISE compression
 *                    (parameterization re-factors most of the bloat)
 *     DISE+DISE    — MFI productions composed over the decompression
 *                    dictionary (transparent within aware)
 *
 * Panel B: composed RT behaviour: capacity loss from inlined sequences,
 *   and the composed-fill miss handler (150 cycles vs 30). As in
 *   Figure 7 we add 64/256-entry points scaled to our dictionary sizes.
 */

#include "harness.hpp"

#include "src/acf/compose.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

void
runFigure8()
{
    std::printf("==========================================================\n");
    std::printf("Figure 8: Composing Decompression and Fault Isolation\n");
    std::printf("==========================================================\n\n");

    const auto specs = selectedSpecs();

    // ---- Panel A. ----
    {
        std::printf("-- Panel A: combination x I-cache size (perfect RT; "
                    "normalized to native @ 32KB) --\n");
        std::vector<std::string> header = {"bench"};
        for (const char *kb : {"8K", "32K", "128K", "perf"}) {
            header.push_back(std::string("rw+ded@") + kb);
            header.push_back(std::string("rw+DISE@") + kb);
            header.push_back(std::string("DISE+DISE@") + kb);
        }
        TextTable table(header);
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            MfiOptions mopts;
            const ProductionSet mfi = makeMfiProductions(prog, mopts);

            // Rewriting-based MFI first, then compress the bloat.
            const Program rewritten = applyMfiRewriting(prog);
            const auto rwDed = compressProgram(
                rewritten, dedicatedDecompressorOptions());
            const auto rwDise = compressProgram(rewritten);

            // DISE+DISE: compress the ORIGINAL program; fault isolation
            // is composed over the dictionary by the client.
            const auto comp = compressProgram(prog);
            ComposeOptions copts;
            copts.viaMissHandler = true;
            auto composed = std::make_shared<ProductionSet>(
                composeNested(mfi, *comp.dictionary, copts));

            const TimingResult ref = runNative(
                prog, baselineMachine(), spec.name, "base");
            std::vector<std::string> row = {spec.name};
            for (const uint32_t kb : {8u, 32u, 128u, 0u}) {
                const std::string sz =
                    kb ? std::to_string(kb) + "K" : "perfect";
                const PipelineParams machine = baselineMachine(kb);
                DiseConfig perfect;
                perfect.rtEntries = 0;
                const TimingResult a =
                    runDise(rwDed.compressed, machine, rwDed.dictionary,
                            perfect, false, nullptr, spec.name,
                            "rw_dedicated_icache" + sz);
                check(a, spec.name + " rw+ded");
                const TimingResult b =
                    runDise(rwDise.compressed, machine,
                            rwDise.dictionary, perfect, false, nullptr,
                            spec.name, "rw_dise_icache" + sz);
                check(b, spec.name + " rw+DISE");
                const TimingResult c =
                    runDise(comp.compressed, machine, composed, perfect,
                            true, &prog, spec.name,
                            "dise_dise_icache" + sz);
                check(c, spec.name + " DISE+DISE");
                row.push_back(
                    TextTable::num(double(a.cycles) / ref.cycles));
                row.push_back(
                    TextTable::num(double(b.cycles) / ref.cycles));
                row.push_back(
                    TextTable::num(double(c.cycles) / ref.cycles));
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }

    // ---- Panel B. ----
    {
        std::printf("-- Panel B: DISE+DISE with realistic RTs; composed "
                    "misses cost 30 (capacity only) vs 150 (plus "
                    "composition in the miss handler) --\n");
        std::vector<std::string> header = {"bench", "perfRT"};
        for (const char *rt : {"2K/2w", "512/2w", "256/2w", "64/2w"}) {
            header.push_back(std::string(rt) + "@30");
            header.push_back(std::string(rt) + "@150");
        }
        TextTable table(header);
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            MfiOptions mopts;
            const ProductionSet mfi = makeMfiProductions(prog, mopts);
            const auto comp = compressProgram(prog);
            const TimingResult ref = runNative(prog, baselineMachine());

            auto composedSet = [&](bool viaMissHandler) {
                ComposeOptions copts;
                copts.viaMissHandler = viaMissHandler;
                return std::make_shared<ProductionSet>(
                    composeNested(mfi, *comp.dictionary, copts));
            };
            auto run = [&](uint32_t entries, bool composedFill) {
                DiseConfig config;
                config.rtEntries = entries;
                config.rtAssoc = 2;
                const std::string regime =
                    entries ? "composed_rt" + std::to_string(entries) +
                                  (composedFill ? "_fill150" : "_fill30")
                            : "composed_rt_perfect";
                const TimingResult r = runDise(
                    comp.compressed, baselineMachine(),
                    composedSet(composedFill), config, true, &prog,
                    spec.name, regime);
                check(r, spec.name + " panelB");
                return TextTable::num(double(r.cycles) / ref.cycles);
            };

            std::vector<std::string> row = {spec.name, run(0, false)};
            for (const uint32_t entries : {2048u, 512u, 256u, 64u}) {
                row.push_back(run(entries, false)); // 30-cycle fills
                row.push_back(run(entries, true));  // 150-cycle fills
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }
    BenchJson::instance().write("fig8_composition", "timing");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "bench_fig8_composition");
    return benchGuard(runFigure8);
}
