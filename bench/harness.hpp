/**
 * @file
 * Shared helpers for the paper-figure benchmark harnesses: cached
 * workload construction, standard machine configurations, and run
 * wrappers for the native / DISE / rewriting regimes.
 *
 * Environment knobs:
 *   DISE_BENCH_SCALE  scale every workload's dynamic-instruction target
 *                     (e.g. 0.25 for a quick pass); default 1.0.
 *   DISE_BENCH_ONLY   comma-separated benchmark names to run.
 *   DISE_BENCH_JOBS   shard per-benchmark work across this many worker
 *                     threads (each run builds its own engine/simulator,
 *                     so results are identical at any job count);
 *                     default 1.
 *   DISE_BENCH_JSON   directory (created if missing) into which each
 *                     bench writes a machine-readable
 *                     BENCH_<name>.json artifact next to its table
 *                     output; unset = no artifacts. See DESIGN.md for
 *                     the schema.
 */

#ifndef DISE_BENCH_HARNESS_HPP
#define DISE_BENCH_HARNESS_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/common/logging.hpp"
#include "src/common/singleflight.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/workloads/workloads.hpp"

namespace dise::bench {

/** Parse a strictly positive number; fatal() on garbage or x <= 0. */
inline double
parsePositive(const char *text, const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        fatal(std::string(what) + ": cannot parse \"" + text + "\"");
    }
    if (!(value > 0)) {
        fatal(std::string(what) + ": must be > 0, got \"" + text + "\"");
    }
    return value;
}

/** Benchmarks selected for this run, in suite order. */
inline std::vector<WorkloadSpec>
selectedSpecs()
{
    double scale = 1.0;
    if (const char *env = std::getenv("DISE_BENCH_SCALE"))
        scale = parsePositive(env, "DISE_BENCH_SCALE");
    std::string only;
    if (const char *env = std::getenv("DISE_BENCH_ONLY"))
        only = std::string(",") + env + ",";
    std::vector<WorkloadSpec> specs;
    for (WorkloadSpec spec : spec2000()) {
        if (!only.empty() &&
            only.find("," + spec.name + ",") == std::string::npos) {
            continue;
        }
        if (scale != 1.0) {
            spec.targetDynInsts = static_cast<uint64_t>(
                double(spec.targetDynInsts) * scale);
            spec.kernelIters = std::max(
                1u,
                static_cast<uint32_t>(double(spec.kernelIters) * scale));
        }
        specs.push_back(spec);
    }
    return specs;
}

/**
 * Build (and cache) a workload program. Thread-safe and single-flight:
 * when sharded workers race for the same spec, exactly one runs
 * buildWorkload and the rest wait for its result.
 */
inline const Program &
program(const WorkloadSpec &spec)
{
    static SingleFlightCache<std::string, Program> cache;
    return cache.get(spec.name,
                     [&spec] { return buildWorkload(spec); });
}

/** Worker count from DISE_BENCH_JOBS (validated); default 1. */
inline unsigned
benchJobs()
{
    const char *env = std::getenv("DISE_BENCH_JOBS");
    if (!env)
        return 1;
    const double jobs = parsePositive(env, "DISE_BENCH_JOBS");
    if (jobs != double(unsigned(jobs)))
        fatal(std::string("DISE_BENCH_JOBS: not an integer: ") + env);
    return unsigned(jobs);
}

/**
 * Run @p fn over every spec, sharded across DISE_BENCH_JOBS std::thread
 * workers, and return the results in suite order. Each call of @p fn
 * must build its own simulators/engines (all run*() helpers do), so a
 * sharded suite produces bit-identical numbers to a serial one.
 */
template <typename Fn>
auto
mapSpecs(const std::vector<WorkloadSpec> &specs, Fn fn)
    -> std::vector<decltype(fn(specs.front()))>
{
    using Result = decltype(fn(specs.front()));
    std::vector<Result> results(specs.size());
    const unsigned jobs =
        std::min<unsigned>(benchJobs(), std::max<size_t>(specs.size(), 1));
    if (jobs <= 1) {
        for (size_t i = 0; i < specs.size(); ++i)
            results[i] = fn(specs[i]);
        return results;
    }
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMutex;
    auto worker = [&]() {
        for (size_t i = next.fetch_add(1); i < specs.size();
             i = next.fetch_add(1)) {
            if (failed.load())
                return;
            try {
                results[i] = fn(specs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < jobs; ++t)
        threads.emplace_back(worker);
    for (auto &thread : threads)
        thread.join();
    if (error)
        std::rethrow_exception(error);
    return results;
}

/** Baseline machine of the paper's evaluation. */
inline PipelineParams
baselineMachine(uint32_t icacheKB = 32, uint32_t width = 4)
{
    PipelineParams params;
    params.width = width;
    params.mem.l1iSize = icacheKB * 1024; // 0 = perfect
    return params;
}

/**
 * Collector for the DISE_BENCH_JSON artifact: timing/micro/campaign
 * entries keyed by workload and regime, serialized once at bench exit
 * by writeBenchJson(). Thread-safe (mapSpecs workers record
 * concurrently); entries are stored in sorted maps, so the artifact is
 * byte-identical at any DISE_BENCH_JOBS count or recording order.
 */
class BenchJson
{
  public:
    static BenchJson &
    instance()
    {
        static BenchJson recorder;
        return recorder;
    }

    /** Enabled iff DISE_BENCH_JSON names an artifact directory. */
    bool enabled() const { return !dir_.empty(); }

    /** Record one workload x regime entry (any kind). */
    void
    record(const std::string &workload, const std::string &regime,
           Json entry)
    {
        if (!enabled())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        workloads_[workload][regime] = std::move(entry);
    }

    /**
     * Write BENCH_<name>.json into the artifact directory (created if
     * missing) and clear the recorded entries.
     */
    void
    write(const std::string &name, const std::string &kind)
    {
        if (!enabled())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        Json doc = Json::object();
        doc["schema_version"] = Json(uint64_t(1));
        doc["bench"] = Json(name);
        doc["kind"] = Json(kind);
        Json host = Json::object();
        host["jobs"] = Json(uint64_t(benchJobs()));
        host["seconds"] = Json(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
        doc["host"] = std::move(host);
        doc["workloads"] = std::move(workloads_);
        workloads_ = Json::object();
        std::filesystem::create_directories(dir_);
        const std::string path =
            (std::filesystem::path(dir_) / ("BENCH_" + name + ".json"))
                .string();
        std::ofstream out(path);
        if (!out)
            fatal("DISE_BENCH_JSON: cannot write " + path);
        out << doc.dump(2) << "\n";
        if (!out)
            fatal("DISE_BENCH_JSON: write failed: " + path);
    }

  private:
    BenchJson()
    {
        if (const char *env = std::getenv("DISE_BENCH_JSON"))
            dir_ = env;
    }

    std::string dir_;
    std::mutex mutex_;
    Json workloads_ = Json::object();
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * Per-entry host-side throughput section: wall-clock seconds and guest
 * instructions simulated per second. Host-dependent by construction —
 * determinism comparisons must strip it (validate_bench_json.py
 * --compare does).
 */
inline Json
hostSection(double seconds, uint64_t guestInsts)
{
    Json host = Json::object();
    host["seconds"] = Json(seconds);
    host["insts_per_second"] =
        Json(safeRatio(double(guestInsts), seconds));
    return host;
}

/**
 * Build the JSON artifact entry for one timing run: cycles/CPI, the
 * per-stage cycle buckets, every component counter and derived ratio
 * (via PipelineSim::registerStats), and the host-side run time.
 */
inline Json
timingEntry(PipelineSim &sim, const TimingResult &t, double hostSeconds)
{
    StatsRegistry reg;
    sim.registerStats(reg);
    Json entry = Json::object();
    entry["cycles"] = Json(t.cycles);
    entry["insts"] = Json(t.arch.dynInsts);
    entry["ipc"] = Json(t.ipc());
    entry["cpi"] = Json(
        safeRatio(double(t.cycles), double(t.arch.dynInsts)));
    entry["host"] = hostSection(hostSeconds, t.arch.dynInsts);
    Json buckets = Json::object();
    buckets["issue"] = Json(t.buckets.issue);
    buckets["imiss_stall"] = Json(t.buckets.imissStall);
    buckets["dmiss_stall"] = Json(t.buckets.dmissStall);
    buckets["branch_flush"] = Json(t.buckets.branchFlush);
    buckets["dise_stall"] = Json(t.buckets.diseStall);
    buckets["hazard"] = Json(t.buckets.hazard);
    buckets["drain"] = Json(t.buckets.drain);
    entry["buckets"] = std::move(buckets);
    entry["counters"] = reg.toJson();
    return entry;
}

/**
 * Run a program with no DISE. When @p workload / @p regime labels are
 * given and DISE_BENCH_JSON is set, the run is recorded in the bench's
 * JSON artifact under those labels.
 */
inline TimingResult
runNative(const Program &prog, const PipelineParams &params,
          const std::string &workload = "",
          const std::string &regime = "")
{
    PipelineSim sim(prog, params);
    const auto t0 = std::chrono::steady_clock::now();
    const TimingResult t = sim.run();
    if (!workload.empty() && BenchJson::instance().enabled()) {
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        BenchJson::instance().record(workload, regime,
                                     timingEntry(sim, t, secs));
    }
    return t;
}

/**
 * Run a program under DISE with the given productions and config.
 * Labels work as in runNative().
 */
inline TimingResult
runDise(const Program &prog, const PipelineParams &params,
        std::shared_ptr<const ProductionSet> set, const DiseConfig &config,
        bool mfiRegs = false, const Program *segSource = nullptr,
        const std::string &workload = "", const std::string &regime = "")
{
    DiseController controller(config);
    controller.install(std::move(set));
    PipelineSim sim(prog, params, &controller);
    if (mfiRegs)
        initMfiRegisters(sim.core(), segSource ? *segSource : prog);
    const auto t0 = std::chrono::steady_clock::now();
    const TimingResult t = sim.run();
    if (!workload.empty() && BenchJson::instance().enabled()) {
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        BenchJson::instance().record(workload, regime,
                                     timingEntry(sim, t, secs));
    }
    return t;
}

/**
 * Abort the bench loudly if a run misbehaved. Throws (FatalError)
 * rather than exiting so failures inside sharded mapSpecs workers
 * unwind through the harness's exception_ptr path instead of calling
 * std::exit on a worker thread; benchGuard() turns it into exit
 * status 1 at main.
 */
inline void
check(const TimingResult &result, const std::string &what)
{
    if (!result.arch.exited || result.arch.exitCode != 0) {
        fatal(strFormat("BENCH FAILURE: %s exited=%d code=%d",
                        what.c_str(), int(result.arch.exited),
                        result.arch.exitCode));
    }
}

/**
 * Run a bench body, mapping the harness error classes onto process
 * exit codes (user/workload error 1, simulator invariant 2) like the
 * tools do. Use as: int main() { return benchGuard([] {...}); }
 */
template <typename Fn>
inline int
benchGuard(Fn &&fn)
{
    try {
        fn();
        return 0;
    } catch (const PanicError &) {
        return 2;
    } catch (const FatalError &) {
        return 1;
    }
}

/** Geometric mean helper for summary rows. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log = 0;
    for (const double v : values)
        log += std::log(v);
    return std::exp(log / double(values.size()));
}

} // namespace dise::bench

#endif // DISE_BENCH_HARNESS_HPP
