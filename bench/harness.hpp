/**
 * @file
 * Shared helpers for the paper-figure benchmark harnesses: cached
 * workload construction, standard machine configurations, and run
 * wrappers for the native / DISE / rewriting regimes.
 *
 * Environment knobs:
 *   DISE_BENCH_SCALE  scale every workload's dynamic-instruction target
 *                     (e.g. 0.25 for a quick pass); default 1.0.
 *   DISE_BENCH_ONLY   comma-separated benchmark names to run.
 *   DISE_BENCH_JOBS   shard per-benchmark work across this many worker
 *                     threads (each run builds its own engine/simulator,
 *                     so results are identical at any job count);
 *                     default 1.
 */

#ifndef DISE_BENCH_HARNESS_HPP
#define DISE_BENCH_HARNESS_HPP

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/common/logging.hpp"
#include "src/common/table.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/workloads/workloads.hpp"

namespace dise::bench {

/** Parse a strictly positive number; fatal() on garbage or x <= 0. */
inline double
parsePositive(const char *text, const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        fatal(std::string(what) + ": cannot parse \"" + text + "\"");
    }
    if (!(value > 0)) {
        fatal(std::string(what) + ": must be > 0, got \"" + text + "\"");
    }
    return value;
}

/** Benchmarks selected for this run, in suite order. */
inline std::vector<WorkloadSpec>
selectedSpecs()
{
    double scale = 1.0;
    if (const char *env = std::getenv("DISE_BENCH_SCALE"))
        scale = parsePositive(env, "DISE_BENCH_SCALE");
    std::string only;
    if (const char *env = std::getenv("DISE_BENCH_ONLY"))
        only = std::string(",") + env + ",";
    std::vector<WorkloadSpec> specs;
    for (WorkloadSpec spec : spec2000()) {
        if (!only.empty() &&
            only.find("," + spec.name + ",") == std::string::npos) {
            continue;
        }
        if (scale != 1.0) {
            spec.targetDynInsts = static_cast<uint64_t>(
                double(spec.targetDynInsts) * scale);
            spec.kernelIters = std::max(
                1u,
                static_cast<uint32_t>(double(spec.kernelIters) * scale));
        }
        specs.push_back(spec);
    }
    return specs;
}

/** Build (and cache) a workload program. Thread-safe. */
inline const Program &
program(const WorkloadSpec &spec)
{
    static std::mutex mutex;
    static std::map<std::string, Program> cache;
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(spec.name);
        if (it != cache.end())
            return it->second;
    }
    Program built = buildWorkload(spec);
    std::lock_guard<std::mutex> lock(mutex);
    // First inserter wins; std::map references stay stable.
    return cache.emplace(spec.name, std::move(built)).first->second;
}

/** Worker count from DISE_BENCH_JOBS (validated); default 1. */
inline unsigned
benchJobs()
{
    const char *env = std::getenv("DISE_BENCH_JOBS");
    if (!env)
        return 1;
    const double jobs = parsePositive(env, "DISE_BENCH_JOBS");
    if (jobs != double(unsigned(jobs)))
        fatal(std::string("DISE_BENCH_JOBS: not an integer: ") + env);
    return unsigned(jobs);
}

/**
 * Run @p fn over every spec, sharded across DISE_BENCH_JOBS std::thread
 * workers, and return the results in suite order. Each call of @p fn
 * must build its own simulators/engines (all run*() helpers do), so a
 * sharded suite produces bit-identical numbers to a serial one.
 */
template <typename Fn>
auto
mapSpecs(const std::vector<WorkloadSpec> &specs, Fn fn)
    -> std::vector<decltype(fn(specs.front()))>
{
    using Result = decltype(fn(specs.front()));
    std::vector<Result> results(specs.size());
    const unsigned jobs =
        std::min<unsigned>(benchJobs(), std::max<size_t>(specs.size(), 1));
    if (jobs <= 1) {
        for (size_t i = 0; i < specs.size(); ++i)
            results[i] = fn(specs[i]);
        return results;
    }
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMutex;
    auto worker = [&]() {
        for (size_t i = next.fetch_add(1); i < specs.size();
             i = next.fetch_add(1)) {
            if (failed.load())
                return;
            try {
                results[i] = fn(specs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < jobs; ++t)
        threads.emplace_back(worker);
    for (auto &thread : threads)
        thread.join();
    if (error)
        std::rethrow_exception(error);
    return results;
}

/** Baseline machine of the paper's evaluation. */
inline PipelineParams
baselineMachine(uint32_t icacheKB = 32, uint32_t width = 4)
{
    PipelineParams params;
    params.width = width;
    params.mem.l1iSize = icacheKB * 1024; // 0 = perfect
    return params;
}

/** Run a program with no DISE. */
inline TimingResult
runNative(const Program &prog, const PipelineParams &params)
{
    PipelineSim sim(prog, params);
    return sim.run();
}

/** Run a program under DISE with the given productions and config. */
inline TimingResult
runDise(const Program &prog, const PipelineParams &params,
        std::shared_ptr<const ProductionSet> set, const DiseConfig &config,
        bool mfiRegs = false, const Program *segSource = nullptr)
{
    DiseController controller(config);
    controller.install(std::move(set));
    PipelineSim sim(prog, params, &controller);
    if (mfiRegs)
        initMfiRegisters(sim.core(), segSource ? *segSource : prog);
    return sim.run();
}

/** Abort the bench loudly if a run misbehaved. */
inline void
check(const TimingResult &result, const std::string &what)
{
    if (!result.arch.exited || result.arch.exitCode != 0) {
        std::fprintf(stderr, "BENCH FAILURE: %s exited=%d code=%d\n",
                     what.c_str(), result.arch.exited,
                     result.arch.exitCode);
        std::exit(1);
    }
}

/** Geometric mean helper for summary rows. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log = 0;
    for (const double v : values)
        log += std::log(v);
    return std::exp(log / double(values.size()));
}

} // namespace dise::bench

#endif // DISE_BENCH_HARNESS_HPP
