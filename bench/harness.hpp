/**
 * @file
 * Shared helpers for the paper-figure benchmark harnesses: cached
 * workload construction, standard machine configurations, and run
 * wrappers for the native / DISE / rewriting regimes.
 *
 * Environment knobs:
 *   DISE_BENCH_SCALE  scale every workload's dynamic-instruction target
 *                     (e.g. 0.25 for a quick pass); default 1.0.
 *   DISE_BENCH_ONLY   comma-separated benchmark names to run.
 */

#ifndef DISE_BENCH_HARNESS_HPP
#define DISE_BENCH_HARNESS_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/common/table.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/workloads/workloads.hpp"

namespace dise::bench {

/** Benchmarks selected for this run, in suite order. */
inline std::vector<WorkloadSpec>
selectedSpecs()
{
    double scale = 1.0;
    if (const char *env = std::getenv("DISE_BENCH_SCALE"))
        scale = std::atof(env);
    std::string only;
    if (const char *env = std::getenv("DISE_BENCH_ONLY"))
        only = std::string(",") + env + ",";
    std::vector<WorkloadSpec> specs;
    for (WorkloadSpec spec : spec2000()) {
        if (!only.empty() &&
            only.find("," + spec.name + ",") == std::string::npos) {
            continue;
        }
        if (scale > 0 && scale != 1.0) {
            spec.targetDynInsts = static_cast<uint64_t>(
                double(spec.targetDynInsts) * scale);
            spec.kernelIters = std::max(
                1u,
                static_cast<uint32_t>(double(spec.kernelIters) * scale));
        }
        specs.push_back(spec);
    }
    return specs;
}

/** Build (and cache) a workload program. */
inline const Program &
program(const WorkloadSpec &spec)
{
    static std::map<std::string, Program> cache;
    auto it = cache.find(spec.name);
    if (it == cache.end())
        it = cache.emplace(spec.name, buildWorkload(spec)).first;
    return it->second;
}

/** Baseline machine of the paper's evaluation. */
inline PipelineParams
baselineMachine(uint32_t icacheKB = 32, uint32_t width = 4)
{
    PipelineParams params;
    params.width = width;
    params.mem.l1iSize = icacheKB * 1024; // 0 = perfect
    return params;
}

/** Run a program with no DISE. */
inline TimingResult
runNative(const Program &prog, const PipelineParams &params)
{
    PipelineSim sim(prog, params);
    return sim.run();
}

/** Run a program under DISE with the given productions and config. */
inline TimingResult
runDise(const Program &prog, const PipelineParams &params,
        std::shared_ptr<const ProductionSet> set, const DiseConfig &config,
        bool mfiRegs = false, const Program *segSource = nullptr)
{
    DiseController controller(config);
    controller.install(std::move(set));
    PipelineSim sim(prog, params, &controller);
    if (mfiRegs)
        initMfiRegisters(sim.core(), segSource ? *segSource : prog);
    return sim.run();
}

/** Abort the bench loudly if a run misbehaved. */
inline void
check(const TimingResult &result, const std::string &what)
{
    if (!result.arch.exited || result.arch.exitCode != 0) {
        std::fprintf(stderr, "BENCH FAILURE: %s exited=%d code=%d\n",
                     what.c_str(), result.arch.exited,
                     result.arch.exitCode);
        std::exit(1);
    }
}

/** Geometric mean helper for summary rows. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log = 0;
    for (const double v : values)
        log += std::log(v);
    return std::exp(log / double(values.size()));
}

} // namespace dise::bench

#endif // DISE_BENCH_HARNESS_HPP
