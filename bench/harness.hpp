/**
 * @file
 * Shared helpers for the paper-figure benchmark harnesses: cached
 * workload construction, standard machine configurations, and run
 * wrappers for the native / DISE / rewriting regimes.
 *
 * Configuration comes from BenchConfig (src/service/bench_config.hpp):
 * one validated struct fed by the DISE_BENCH_* / DISE_FAULT_* env vars
 * with --jobs/--scale/--only/--json/--fault-* CLI flags layered on
 * top. Every bench main calls benchInit(argc, argv, name) first.
 *
 * Sharding runs on the process-wide SimScheduler work-stealing pool
 * (benchScheduler()); runNative/runDise execute through the service
 * executors (src/service/runner.hpp), so a bench run and a
 * `diserun --batch` job of the same shape share one setup path.
 *
 * Thread-safety contract for bench bodies: per-run state (controller,
 * core, pipeline) is built fresh inside each run*() call; shared sinks
 * (BenchJson, the program cache) are internally synchronized; failures
 * throw FatalError — never std::exit — so they unwind through the
 * scheduler's exception channel to benchGuard() on the main thread.
 */

#ifndef DISE_BENCH_HARNESS_HPP
#define DISE_BENCH_HARNESS_HPP

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/common/logging.hpp"
#include "src/common/scheduler.hpp"
#include "src/common/singleflight.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/service/bench_config.hpp"
#include "src/service/runner.hpp"
#include "src/workloads/workloads.hpp"

namespace dise::bench {

// dise::hostSection, reachable qualified as dise::bench::hostSection
// for benches that predate the service layer.
using dise::hostSection;

/** Parse a strictly positive number; fatal() on garbage or x <= 0. */
inline double
parsePositive(const char *text, const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        fatal(std::string(what) + ": cannot parse \"" + text + "\"");
    }
    if (!(value > 0)) {
        fatal(std::string(what) + ": must be > 0, got \"" + text + "\"");
    }
    return value;
}

/**
 * Parse the shared bench flags (and validate the corresponding env
 * vars) for this bench. Call first in every bench main; consumed flags
 * are stripped from argv for benches that parse their own afterwards.
 */
inline void
benchInit(int &argc, char **argv, const char *benchName)
{
    BenchConfig::init(argc, argv, benchName);
}

/** Benchmarks selected for this run, in suite order. */
inline std::vector<WorkloadSpec>
selectedSpecs()
{
    const BenchConfig &cfg = BenchConfig::get();
    std::vector<WorkloadSpec> specs;
    for (const WorkloadSpec &spec : spec2000()) {
        if (cfg.selected(spec.name))
            specs.push_back(scaledSpec(spec, cfg.scale));
    }
    return specs;
}

/**
 * Build (and cache) a workload program. Thread-safe and single-flight:
 * when sharded workers race for the same spec, exactly one runs
 * buildWorkload and the rest wait for its result.
 */
inline const Program &
program(const WorkloadSpec &spec)
{
    static SingleFlightCache<std::string, Program> cache;
    return cache.get(spec.name,
                     [&spec] { return buildWorkload(spec); });
}

/** Worker count (BenchConfig jobs; --jobs / DISE_BENCH_JOBS). */
inline unsigned
benchJobs()
{
    return BenchConfig::get().jobs;
}

/**
 * The process-wide scheduler every sharded bench stage runs on.
 * Constructed on first use (after benchInit has fixed the job count);
 * campaign benches pass it to runCampaign() so trials share the pool.
 */
inline SimScheduler &
benchScheduler()
{
    static SimScheduler scheduler(benchJobs());
    return scheduler;
}

/**
 * Run @p fn over every spec on the bench scheduler and return the
 * results in suite order. Each call of @p fn must build its own
 * simulators/engines (all run*() helpers do), so a sharded suite
 * produces bit-identical numbers to a serial one; the first exception
 * cancels the remaining specs and rethrows on this thread.
 */
template <typename Fn>
auto
mapSpecs(const std::vector<WorkloadSpec> &specs, Fn fn)
    -> std::vector<decltype(fn(specs.front()))>
{
    return benchScheduler().map(specs, std::move(fn));
}

/** Baseline machine of the paper's evaluation. */
inline PipelineParams
baselineMachine(uint32_t icacheKB = 32, uint32_t width = 4)
{
    PipelineParams params;
    params.width = width;
    params.mem.l1iSize = icacheKB * 1024; // 0 = perfect
    return params;
}

/**
 * Collector for the bench JSON artifact: timing/micro/campaign entries
 * keyed by workload and regime, serialized once at bench exit by
 * write(). Thread-safe (scheduler workers record concurrently);
 * entries are stored in sorted maps, so the artifact is byte-identical
 * at any worker count or recording order.
 */
class BenchJson
{
  public:
    static BenchJson &
    instance()
    {
        static BenchJson recorder;
        return recorder;
    }

    /** Enabled iff BenchConfig names an artifact directory. */
    bool enabled() const { return !dir_.empty(); }

    /** Record one workload x regime entry (any kind). */
    void
    record(const std::string &workload, const std::string &regime,
           Json entry)
    {
        if (!enabled())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        workloads_[workload][regime] = std::move(entry);
    }

    /**
     * Write BENCH_<name>.json into the artifact directory (created if
     * missing) and clear the recorded entries.
     */
    void
    write(const std::string &name, const std::string &kind)
    {
        if (!enabled())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        Json doc = Json::object();
        doc["schema_version"] = Json(uint64_t(1));
        doc["bench"] = Json(name);
        doc["kind"] = Json(kind);
        Json host = Json::object();
        host["jobs"] = Json(uint64_t(benchJobs()));
        host["seconds"] = Json(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
        doc["host"] = std::move(host);
        doc["workloads"] = std::move(workloads_);
        workloads_ = Json::object();
        std::filesystem::create_directories(dir_);
        const std::string path =
            (std::filesystem::path(dir_) / ("BENCH_" + name + ".json"))
                .string();
        std::ofstream out(path);
        if (!out)
            fatal("bench json: cannot write " + path);
        out << doc.dump(2) << "\n";
        if (!out)
            fatal("bench json: write failed: " + path);
    }

  private:
    BenchJson() : dir_(BenchConfig::get().jsonDir) {}

    std::string dir_;
    std::mutex mutex_;
    Json workloads_ = Json::object();
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * Run a program with no DISE. When @p workload / @p regime labels are
 * given and artifacts are enabled, the run is recorded in the bench's
 * JSON artifact under those labels.
 */
inline TimingResult
runNative(const Program &prog, const PipelineParams &params,
          const std::string &workload = "",
          const std::string &regime = "")
{
    PreparedJob job;
    job.prog = &prog;
    job.machine = params;
    SimOptions opts;
    opts.benchEntry = !workload.empty() && BenchJson::instance().enabled();
    TimingOutcome out = runTimingSim(job, opts);
    if (opts.benchEntry) {
        BenchJson::instance().record(workload, regime,
                                     std::move(out.benchEntry));
    }
    return out.timing;
}

/**
 * Run a program under DISE with the given productions and config.
 * Labels work as in runNative().
 */
inline TimingResult
runDise(const Program &prog, const PipelineParams &params,
        std::shared_ptr<const ProductionSet> set, const DiseConfig &config,
        bool mfiRegs = false, const Program *segSource = nullptr,
        const std::string &workload = "", const std::string &regime = "")
{
    PreparedJob job;
    job.prog = &prog;
    job.machine = params;
    job.productions = std::move(set);
    job.dise = config;
    if (mfiRegs) {
        const Program *seg = segSource ? segSource : &prog;
        job.initCore = [seg](ExecCore &core) {
            initMfiRegisters(core, *seg);
        };
    }
    SimOptions opts;
    opts.benchEntry = !workload.empty() && BenchJson::instance().enabled();
    TimingOutcome out = runTimingSim(job, opts);
    if (opts.benchEntry) {
        BenchJson::instance().record(workload, regime,
                                     std::move(out.benchEntry));
    }
    return out.timing;
}

/**
 * Abort the bench loudly if a run misbehaved. Throws (FatalError)
 * rather than exiting so failures inside scheduler workers unwind
 * through the scheduler's exception channel — never std::exit on a
 * worker thread — and benchGuard() turns the rethrown error into exit
 * status 1 at main.
 */
inline void
check(const TimingResult &result, const std::string &what)
{
    if (!result.arch.exited || result.arch.exitCode != 0) {
        fatal(strFormat("BENCH FAILURE: %s exited=%d code=%d",
                        what.c_str(), int(result.arch.exited),
                        result.arch.exitCode));
    }
}

/**
 * Run a bench body, mapping the harness error classes onto process
 * exit codes (user/workload error 1, simulator invariant 2) like the
 * tools do. Use as:
 *   int main(int argc, char **argv) {
 *       benchInit(argc, argv, "name");
 *       return benchGuard([] {...});
 *   }
 */
template <typename Fn>
inline int
benchGuard(Fn &&fn)
{
    try {
        fn();
        return 0;
    } catch (const PanicError &) {
        return 2;
    } catch (const FatalError &) {
        return 1;
    }
}

/** Geometric mean helper for summary rows. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log = 0;
    for (const double v : values)
        log += std::log(v);
    return std::exp(log / double(values.size()));
}

} // namespace dise::bench

#endif // DISE_BENCH_HARNESS_HPP
