/**
 * @file
 * Simulator throughput: guest instructions simulated per host second.
 *
 * Not a paper figure — a host-side performance harness for the
 * simulator itself, guarding the translated basic-block engine's
 * speedup (DESIGN.md section 9) and the timing model's trace feed
 * (DESIGN.md section 14). Per workload it measures guest MIPS for:
 *
 *   functional               no DISE, trace cache on
 *   functional_mfi           MFI (DISE3) productions, trace cache on
 *   functional_mfi_nochain   trace cache on, superblock chaining off
 *                            (every block exit routes through the
 *                            dispatcher — isolates the chaining win)
 *   functional_mfi_slowpath  same run with the trace cache disabled
 *                            (the --no-trace-cache escape hatch)
 *   timing_mfi               baseline 4-wide machine, MFI productions,
 *                            batched trace feed (the default path)
 *   timing_mfi_stepfeed      the same machine on the step-driven
 *                            reference path (--no-trace-feed)
 *   timing_mfi_sampled       SMARTS-style sampled timing on the feed
 *   timing_mfi_fused         the same machine with the macro-op fusion
 *                            ACF enabled; its artifact entry carries a
 *                            deterministic "fusion" section with the
 *                            per-family pair counts, the fused
 *                            coverage of the retired stream, and the
 *                            IPC delta over timing_mfi
 *
 * Differential checks (hard failures): the fast and slow functional
 * MFI runs must retire the identical instruction count, the feed
 * and step-driven timing runs must agree bit-for-bit on cycles, every
 * cycle bucket, the prediction/redirect counters, and the retired
 * instruction count (the full bit-identity suite lives in
 * tests/test_trace_feed.cpp), and the fused timing run must retire an
 * architectural result identical to the unfused one — fusion contracts
 * issue slots, never semantics. The "speedup" column is functional_mfi
 * over its slow-path twin; "t-spdup" is the feed over the step-driven
 * reference, also recorded (host section, so determinism comparisons
 * strip it) in the timing_mfi entry. The sampled entry carries a
 * "sampling" section with the window configuration and the CPI error
 * of the extrapolation against the full-detail run.
 *
 * Honors the usual harness knobs (DISE_BENCH_SCALE / _ONLY / _JOBS /
 * _JSON); the JSON artifact is BENCH_sim_throughput.json with kind
 * "throughput", whose entries carry the guest instruction count and
 * the per-entry host section. Host wall-clock numbers are inherently
 * machine-dependent: determinism comparisons strip every host section
 * and every sampling section (validate_bench_json.py --compare).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/harness.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

/** Sampled-timing configuration exercised by the bench. */
constexpr uint64_t kSamplePeriod = 10000;
constexpr uint64_t kSampleDetail = 2000;

struct Measured
{
    uint64_t insts = 0;
    double seconds = 0.0;

    double
    mips() const
    {
        return seconds > 0.0 ? double(insts) / 1e6 / seconds : 0.0;
    }
};

/** A timing run: wall-clock measurement plus the full timing result. */
struct TimedMeasured
{
    Measured m;
    TimingResult t;
    /** acf.fusion counters when the run had fusion enabled. */
    std::map<std::string, uint64_t> fusionCounters;
};

Json
throughputEntry(const Measured &m)
{
    Json entry = Json::object();
    entry["insts"] = Json(m.insts);
    entry["host"] = hostSection(m.seconds, m.insts);
    return entry;
}

std::shared_ptr<const ProductionSet>
mfiSet(const Program &prog)
{
    MfiOptions opts;
    opts.variant = MfiVariant::Dise3;
    return std::make_shared<const ProductionSet>(
        makeMfiProductions(prog, opts));
}

Measured
runFunctional(const Program &prog,
              std::shared_ptr<const ProductionSet> set, bool traceCache,
              const std::string &what, bool chaining = true)
{
    std::unique_ptr<DiseController> controller;
    if (set) {
        controller = std::make_unique<DiseController>(DiseConfig{});
        controller->install(std::move(set));
    }
    ExecCore core(prog, controller.get());
    if (controller)
        initMfiRegisters(core, prog);
    core.setTraceCacheEnabled(traceCache);
    core.setChainingEnabled(chaining);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = core.run();
    Measured m;
    m.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    m.insts = r.dynInsts;
    if (!r.exited || r.exitCode != 0) {
        fatal(strFormat("BENCH FAILURE: %s exited=%d code=%d",
                        what.c_str(), int(r.exited), r.exitCode));
    }
    return m;
}

TimedMeasured
runTimingMfi(const Program &prog,
             std::shared_ptr<const ProductionSet> set,
             const std::string &what, bool traceFeed,
             uint64_t samplePeriod = 0, uint64_t sampleDetail = 0,
             bool fusion = false)
{
    DiseController controller{DiseConfig{}};
    controller.install(std::move(set));
    PipelineSim sim(prog, baselineMachine(), &controller);
    sim.setTraceFeed(traceFeed);
    if (samplePeriod != 0)
        sim.setSampling(samplePeriod, sampleDetail);
    initMfiRegisters(sim.core(), prog);
    sim.core().setFusionEnabled(fusion);
    const auto t0 = std::chrono::steady_clock::now();
    TimedMeasured out;
    out.t = sim.run();
    out.m.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    out.m.insts = out.t.arch.dynInsts;
    if (fusion)
        out.fusionCounters = sim.core().fusionStatGroup().counters();
    check(out.t, what);
    return out;
}

/**
 * The deterministic "fusion" artifact section of the timing_mfi_fused
 * entry: per-family pair counts, the fused fraction of the retired
 * stream, and the IPC the contraction buys over the unfused twin.
 * Everything here must be bit-stable across runs (validated by
 * validate_bench_json.py --compare, which does NOT strip it).
 */
Json
fusionSection(const TimedMeasured &fused, const TimedMeasured &unfused)
{
    Json out = Json::object();
    for (const auto &kv : fused.fusionCounters)
        out[kv.first] = Json(kv.second);
    const uint64_t pairs = fused.fusionCounters.count("fused_pairs")
                               ? fused.fusionCounters.at("fused_pairs")
                               : 0;
    const double cov =
        fused.t.arch.dynInsts
            ? 2.0 * double(pairs) / double(fused.t.arch.dynInsts)
            : 0.0;
    out["coverage"] = Json(cov);
    out["ipc"] = Json(fused.t.ipc());
    out["ipc_unfused"] = Json(unfused.t.ipc());
    out["ipc_delta_pct"] =
        Json(unfused.t.ipc() > 0.0
                 ? 100.0 * (fused.t.ipc() / unfused.t.ipc() - 1.0)
                 : 0.0);
    return out;
}

/**
 * The feed-vs-step identity contract, enforced loudly: both paths must
 * agree on every architectural and timing number. Cheap differential
 * twin of the registry-level comparison in tests/test_trace_feed.cpp.
 */
void
checkFeedIdentity(const std::string &bench, const TimingResult &feed,
                  const TimingResult &step)
{
    const auto mismatch = [&](const char *what, uint64_t a, uint64_t b) {
        fatal(strFormat("BENCH FAILURE: %s trace feed diverged from the "
                        "step-driven reference: %s %llu (feed) vs %llu "
                        "(step)",
                        bench.c_str(), what, (unsigned long long)a,
                        (unsigned long long)b));
    };
    const auto req = [&](const char *what, uint64_t a, uint64_t b) {
        if (a != b)
            mismatch(what, a, b);
    };
    req("dyn_insts", feed.arch.dynInsts, step.arch.dynInsts);
    req("cycles", feed.cycles, step.cycles);
    req("bucket.issue", feed.buckets.issue, step.buckets.issue);
    req("bucket.imiss_stall", feed.buckets.imissStall,
        step.buckets.imissStall);
    req("bucket.dmiss_stall", feed.buckets.dmissStall,
        step.buckets.dmissStall);
    req("bucket.branch_flush", feed.buckets.branchFlush,
        step.buckets.branchFlush);
    req("bucket.dise_stall", feed.buckets.diseStall,
        step.buckets.diseStall);
    req("bucket.hazard", feed.buckets.hazard, step.buckets.hazard);
    req("bucket.drain", feed.buckets.drain, step.buckets.drain);
    req("mispredicts", feed.mispredicts, step.mispredicts);
    req("decode_redirects", feed.decodeRedirects, step.decodeRedirects);
    req("dise_mispredicts", feed.diseMispredicts, step.diseMispredicts);
    req("expansion_stalls", feed.expansionStalls, step.expansionStalls);
    req("miss_stall_cycles", feed.missStallCycles, step.missStallCycles);
    req("icache_misses", feed.icacheMisses, step.icacheMisses);
    req("dcache_misses", feed.dcacheMisses, step.dcacheMisses);
    req("l2_misses", feed.l2Misses, step.l2Misses);
}

/** The sampling section of the timing_mfi_sampled artifact entry. */
Json
samplingSection(const TimingResult &sampled, const TimingResult &full)
{
    const SamplingInfo &s = sampled.sampling;
    Json out = Json::object();
    out["period"] = Json(s.period);
    out["detail"] = Json(s.detail);
    out["sampled_insts"] = Json(s.sampledInsts);
    out["warmed_insts"] = Json(s.warmedInsts);
    out["measured_cycles"] = Json(s.measuredCycles);
    out["estimated_cycles"] = Json(sampled.estimatedCycles());
    out["measured_cpi"] = Json(s.measuredCpi());
    const double err =
        full.cycles
            ? std::fabs(double(sampled.estimatedCycles()) -
                        double(full.cycles)) /
                  double(full.cycles)
            : 0.0;
    out["cpi_error"] = Json(err);
    return out;
}

void
runSimThroughput()
{
    std::printf("==========================================================\n");
    std::printf("Simulator throughput (guest MIPS per host second)\n");
    std::printf("==========================================================\n\n");

    const auto specs = selectedSpecs();
    TextTable table({"bench", "func", "func+MFI", "no-chain",
                     "MFI-slowpath", "speedup", "t-step", "t-feed",
                     "t-spdup", "t-sampled", "cpi-err%", "fuse-cov%",
                     "fuse-ipc%"});
    struct Row
    {
        std::vector<std::string> cells;
    };
    const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
        const Program &prog = program(spec);
        const auto set = mfiSet(prog);

        const Measured func = runFunctional(
            prog, nullptr, true, spec.name + " functional");
        const Measured fast = runFunctional(
            prog, set, true, spec.name + " functional_mfi");
        const Measured nochain = runFunctional(
            prog, set, true, spec.name + " functional_mfi_nochain",
            false);
        const Measured slow = runFunctional(
            prog, set, false, spec.name + " functional_mfi_slowpath");
        if (fast.insts != slow.insts || fast.insts != nochain.insts) {
            fatal(strFormat(
                "BENCH FAILURE: %s trace cache changed retirement: "
                "%llu insts fast vs %llu no-chain vs %llu slow",
                spec.name.c_str(), (unsigned long long)fast.insts,
                (unsigned long long)nochain.insts,
                (unsigned long long)slow.insts));
        }

        const TimedMeasured step = runTimingMfi(
            prog, set, spec.name + " timing_mfi_stepfeed", false);
        const TimedMeasured feed =
            runTimingMfi(prog, set, spec.name + " timing_mfi", true);
        checkFeedIdentity(spec.name, feed.t, step.t);
        const TimedMeasured fused = runTimingMfi(
            prog, set, spec.name + " timing_mfi_fused", true, 0, 0,
            /*fusion=*/true);
        // Fusion is a contraction of the issue stream, never of the
        // architecture: the fused run must retire the identical
        // architectural result or the fused execution paths are wrong.
        if (fused.t.arch.toJson().dump() != feed.t.arch.toJson().dump()) {
            fatal(strFormat(
                "BENCH FAILURE: %s fused timing run diverged "
                "architecturally from the unfused run:\n  %s\nvs\n  %s",
                spec.name.c_str(), fused.t.arch.toJson().dump().c_str(),
                feed.t.arch.toJson().dump().c_str()));
        }
        const TimedMeasured sampled = runTimingMfi(
            prog, set, spec.name + " timing_mfi_sampled", true,
            kSamplePeriod, kSampleDetail);
        if (sampled.t.arch.dynInsts != feed.t.arch.dynInsts) {
            fatal(strFormat(
                "BENCH FAILURE: %s sampled timing changed retirement: "
                "%llu insts vs %llu full-detail",
                spec.name.c_str(),
                (unsigned long long)sampled.t.arch.dynInsts,
                (unsigned long long)feed.t.arch.dynInsts));
        }
        const double feedSpeedup =
            step.m.mips() > 0.0 ? feed.m.mips() / step.m.mips() : 0.0;
        const Json sampling = samplingSection(sampled.t, feed.t);
        const double cpiErr = sampling.at("cpi_error").asDouble();
        const Json fusionInfo = fusionSection(fused, feed);

        if (BenchJson::instance().enabled()) {
            BenchJson::instance().record(spec.name, "functional",
                                         throughputEntry(func));
            BenchJson::instance().record(spec.name, "functional_mfi",
                                         throughputEntry(fast));
            BenchJson::instance().record(spec.name,
                                         "functional_mfi_nochain",
                                         throughputEntry(nochain));
            BenchJson::instance().record(spec.name,
                                         "functional_mfi_slowpath",
                                         throughputEntry(slow));
            Json feedEntry = throughputEntry(feed.m);
            // Host-relative ratio: lives in the host section so
            // determinism comparisons strip it with the rest.
            feedEntry["host"]["speedup_vs_step"] = Json(feedSpeedup);
            BenchJson::instance().record(spec.name, "timing_mfi",
                                         feedEntry);
            BenchJson::instance().record(spec.name,
                                         "timing_mfi_stepfeed",
                                         throughputEntry(step.m));
            Json fusedEntry = throughputEntry(fused.m);
            fusedEntry["fusion"] = fusionInfo;
            BenchJson::instance().record(spec.name, "timing_mfi_fused",
                                         fusedEntry);
            Json sampledEntry = throughputEntry(sampled.m);
            sampledEntry["sampling"] = sampling;
            BenchJson::instance().record(spec.name, "timing_mfi_sampled",
                                         sampledEntry);
        }

        Row row;
        row.cells = {spec.name,
                     TextTable::num(func.mips(), 1),
                     TextTable::num(fast.mips(), 1),
                     TextTable::num(nochain.mips(), 1),
                     TextTable::num(slow.mips(), 1),
                     TextTable::num(slow.mips() > 0.0
                                        ? fast.mips() / slow.mips()
                                        : 0.0,
                                    2),
                     TextTable::num(step.m.mips(), 1),
                     TextTable::num(feed.m.mips(), 1),
                     TextTable::num(feedSpeedup, 2),
                     TextTable::num(sampled.m.mips(), 1),
                     TextTable::num(cpiErr * 100.0, 3),
                     TextTable::num(fusionInfo.at("coverage").asDouble() *
                                        100.0,
                                    2),
                     TextTable::num(
                         fusionInfo.at("ipc_delta_pct").asDouble(), 2)};
        return row;
    });
    for (const Row &row : rows)
        table.addRow(row.cells);
    std::printf("%s\n", table.render().c_str());

    BenchJson::instance().write("sim_throughput", "throughput");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "bench_sim_throughput");
    return benchGuard(runSimThroughput);
}
