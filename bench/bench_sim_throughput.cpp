/**
 * @file
 * Simulator throughput: guest instructions simulated per host second.
 *
 * Not a paper figure — a host-side performance harness for the
 * simulator itself, guarding the translated basic-block engine's
 * speedup (DESIGN.md section 9). Per workload it measures guest MIPS
 * for:
 *
 *   functional               no DISE, trace cache on
 *   functional_mfi           MFI (DISE3) productions, trace cache on
 *   functional_mfi_nochain   trace cache on, superblock chaining off
 *                            (every block exit routes through the
 *                            dispatcher — isolates the chaining win)
 *   functional_mfi_slowpath  same run with the trace cache disabled
 *                            (the --no-trace-cache escape hatch)
 *   timing_mfi               baseline 4-wide machine, MFI productions
 *
 * The fast and slow functional MFI runs must retire the identical
 * instruction count (a cheap differential check; the full bit-identity
 * suite lives in tests/test_trace.cpp), and every run must exit
 * cleanly. The "speedup" column is functional_mfi over its slow-path
 * twin.
 *
 * Honors the usual harness knobs (DISE_BENCH_SCALE / _ONLY / _JOBS /
 * _JSON); the JSON artifact is BENCH_sim_throughput.json with kind
 * "throughput", whose entries carry the guest instruction count and
 * the per-entry host section. Host wall-clock numbers are inherently
 * machine-dependent: determinism comparisons strip every host section
 * (validate_bench_json.py --compare).
 */

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/harness.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

struct Measured
{
    uint64_t insts = 0;
    double seconds = 0.0;

    double
    mips() const
    {
        return seconds > 0.0 ? double(insts) / 1e6 / seconds : 0.0;
    }
};

Json
throughputEntry(const Measured &m)
{
    Json entry = Json::object();
    entry["insts"] = Json(m.insts);
    entry["host"] = hostSection(m.seconds, m.insts);
    return entry;
}

std::shared_ptr<const ProductionSet>
mfiSet(const Program &prog)
{
    MfiOptions opts;
    opts.variant = MfiVariant::Dise3;
    return std::make_shared<const ProductionSet>(
        makeMfiProductions(prog, opts));
}

Measured
runFunctional(const Program &prog,
              std::shared_ptr<const ProductionSet> set, bool traceCache,
              const std::string &what, bool chaining = true)
{
    std::unique_ptr<DiseController> controller;
    if (set) {
        controller = std::make_unique<DiseController>(DiseConfig{});
        controller->install(std::move(set));
    }
    ExecCore core(prog, controller.get());
    if (controller)
        initMfiRegisters(core, prog);
    core.setTraceCacheEnabled(traceCache);
    core.setChainingEnabled(chaining);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = core.run();
    Measured m;
    m.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    m.insts = r.dynInsts;
    if (!r.exited || r.exitCode != 0) {
        fatal(strFormat("BENCH FAILURE: %s exited=%d code=%d",
                        what.c_str(), int(r.exited), r.exitCode));
    }
    return m;
}

Measured
runTimingMfi(const Program &prog,
             std::shared_ptr<const ProductionSet> set,
             const std::string &what)
{
    DiseController controller{DiseConfig{}};
    controller.install(std::move(set));
    PipelineSim sim(prog, baselineMachine(), &controller);
    initMfiRegisters(sim.core(), prog);
    const auto t0 = std::chrono::steady_clock::now();
    const TimingResult t = sim.run();
    Measured m;
    m.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    m.insts = t.arch.dynInsts;
    check(t, what);
    return m;
}

void
runSimThroughput()
{
    std::printf("==========================================================\n");
    std::printf("Simulator throughput (guest MIPS per host second)\n");
    std::printf("==========================================================\n\n");

    const auto specs = selectedSpecs();
    TextTable table({"bench", "func", "func+MFI", "no-chain",
                     "MFI-slowpath", "speedup", "timing+MFI"});
    struct Row
    {
        std::vector<std::string> cells;
    };
    const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
        const Program &prog = program(spec);
        const auto set = mfiSet(prog);

        const Measured func = runFunctional(
            prog, nullptr, true, spec.name + " functional");
        const Measured fast = runFunctional(
            prog, set, true, spec.name + " functional_mfi");
        const Measured nochain = runFunctional(
            prog, set, true, spec.name + " functional_mfi_nochain",
            false);
        const Measured slow = runFunctional(
            prog, set, false, spec.name + " functional_mfi_slowpath");
        if (fast.insts != slow.insts || fast.insts != nochain.insts) {
            fatal(strFormat(
                "BENCH FAILURE: %s trace cache changed retirement: "
                "%llu insts fast vs %llu no-chain vs %llu slow",
                spec.name.c_str(), (unsigned long long)fast.insts,
                (unsigned long long)nochain.insts,
                (unsigned long long)slow.insts));
        }
        const Measured timing =
            runTimingMfi(prog, set, spec.name + " timing_mfi");

        if (BenchJson::instance().enabled()) {
            BenchJson::instance().record(spec.name, "functional",
                                         throughputEntry(func));
            BenchJson::instance().record(spec.name, "functional_mfi",
                                         throughputEntry(fast));
            BenchJson::instance().record(spec.name,
                                         "functional_mfi_nochain",
                                         throughputEntry(nochain));
            BenchJson::instance().record(spec.name,
                                         "functional_mfi_slowpath",
                                         throughputEntry(slow));
            BenchJson::instance().record(spec.name, "timing_mfi",
                                         throughputEntry(timing));
        }

        Row row;
        row.cells = {spec.name,
                     TextTable::num(func.mips(), 1),
                     TextTable::num(fast.mips(), 1),
                     TextTable::num(nochain.mips(), 1),
                     TextTable::num(slow.mips(), 1),
                     TextTable::num(slow.mips() > 0.0
                                        ? fast.mips() / slow.mips()
                                        : 0.0,
                                    2),
                     TextTable::num(timing.mips(), 1)};
        return row;
    });
    for (const Row &row : rows)
        table.addRow(row.cells);
    std::printf("%s\n", table.render().c_str());

    BenchJson::instance().write("sim_throughput", "throughput");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "bench_sim_throughput");
    return benchGuard(runSimThroughput);
}
