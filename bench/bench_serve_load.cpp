/**
 * @file
 * Serving load bench: drives an in-process SimServer (the exact engine
 * behind `diserun --serve`) through a closed-loop client swarm and an
 * open-loop arrival sweep, and emits the "service" BENCH JSON artifact.
 *
 * Phase 1 (closed loop, deterministic): N clients each send a fixed
 * request mix — well-formed runs with per-request instruction budgets,
 * malformed lines, and invalid requests — one at a time, waiting for
 * each response. The status counts (requests / ok / error / malformed /
 * shed / deadline) depend only on the mix, never on host speed, so two
 * runs of this phase must produce identical counts: CI diffs them with
 * validate_bench_json.py --compare. Client-observed latencies feed the
 * p50/p99 section (host-dependent, stripped in compares).
 *
 * Phase 2 (open loop): a sender paces requests at escalating arrival
 * rates without waiting for responses (10% of them deadline-busting),
 * while a reader drains. The sweep stops once the daemon sheds a
 * significant fraction — that is the saturation point, and the whole
 * point of admission control is that the daemon reaches it shedding
 * structured "overloaded" responses instead of queueing unboundedly.
 * Everything measured here is host-dependent and lives under
 * "open_loop".
 *
 * Artifact: BENCH_serve_load.json, kind "service", one entry under
 * workload "twolf" regime "serve". Honors the usual harness knobs
 * (--jobs / --json / DISE_BENCH_*).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "src/service/server.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

/** Blocking NDJSON client on one loopback connection. */
class LoadClient
{
  public:
    explicit LoadClient(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            fatal("loadgen: socket() failed");
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(uint16_t(port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            fatal("loadgen: connect() failed");
    }

    ~LoadClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendLine(const std::string &body)
    {
        const std::string line = body + "\n";
        size_t off = 0;
        while (off < line.size()) {
            const ssize_t n = ::send(fd_, line.data() + off,
                                     line.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                fatal("loadgen: send() failed");
            off += size_t(n);
        }
    }

    /** One newline-terminated response; empty on connection close. */
    std::string
    readLine()
    {
        for (;;) {
            const size_t pos = buf_.find('\n');
            if (pos != std::string::npos) {
                std::string line = buf_.substr(0, pos);
                buf_.erase(0, pos + 1);
                return line;
            }
            char chunk[16384];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return std::string();
            buf_.append(chunk, size_t(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

/** Status counters shared by both phases. */
struct Tally
{
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t error = 0;
    uint64_t malformed = 0;
    uint64_t shed = 0;     ///< "overloaded"
    uint64_t deadline = 0; ///< "deadline_exceeded"
    uint64_t insts = 0;    ///< guest insts across ok responses

    void
    count(const Json &resp)
    {
        const std::string status = resp.at("status").asString();
        if (status == "ok") {
            ++ok;
            if (resp.contains("run"))
                insts += resp.at("run").at("dyn_insts").asUInt();
        } else if (status == "overloaded") {
            ++shed;
        } else if (status == "deadline_exceeded") {
            ++deadline;
        } else if (status == "malformed" || status == "oversized") {
            ++malformed;
        } else {
            ++error;
        }
    }
};

/**
 * The closed-loop request mix, indexed by a per-client sequence
 * number: every 10th line is malformed, every 10th+5 is an invalid
 * request, the rest are well-formed runs whose instruction budget
 * varies with the index so they miss the idempotency cache and do
 * real work.
 */
std::string
mixLine(int client, int i)
{
    if (i % 10 == 3)
        return "{ this is not json";
    Json doc = Json::object();
    doc["id"] = Json("c" + std::to_string(client) + "-" +
                     std::to_string(i));
    if (i % 10 == 7) {
        doc["workload"] = Json(std::string("no_such_workload"));
    } else {
        doc["workload"] = Json(std::string("twolf"));
        doc["max_insts"] =
            Json(uint64_t(50000 + 1000 * client + 10 * i));
    }
    return doc.dump();
}

/** Latency percentile over a sorted sample set, in milliseconds. */
double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const size_t idx = std::min(
        samples.size() - 1,
        size_t(p / 100.0 * double(samples.size())));
    return samples[idx];
}

struct ClosedLoopResult
{
    Tally tally;
    std::vector<double> latenciesMs;
    double seconds = 0.0;
};

ClosedLoopResult
runClosedLoop(int port, int clients, int perClient)
{
    const size_t lanes = size_t(clients);
    std::vector<Tally> tallies(lanes);
    std::vector<std::vector<double>> latencies(lanes);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            LoadClient client(port);
            for (int i = 0; i < perClient; ++i) {
                const auto sent = std::chrono::steady_clock::now();
                client.sendLine(mixLine(c, i));
                const std::string line = client.readLine();
                if (line.empty())
                    fatal("loadgen: server closed mid-phase");
                latencies[size_t(c)].push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - sent)
                        .count());
                ++tallies[size_t(c)].requests;
                tallies[size_t(c)].count(Json::parse(line));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    ClosedLoopResult result;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    for (int c = 0; c < clients; ++c) {
        const Tally &t = tallies[size_t(c)];
        result.tally.requests += t.requests;
        result.tally.ok += t.ok;
        result.tally.error += t.error;
        result.tally.malformed += t.malformed;
        result.tally.shed += t.shed;
        result.tally.deadline += t.deadline;
        result.tally.insts += t.insts;
        result.latenciesMs.insert(result.latenciesMs.end(),
                                  latencies[size_t(c)].begin(),
                                  latencies[size_t(c)].end());
    }
    return result;
}

struct OpenLoopStep
{
    double offeredRps = 0.0;
    double completedRps = 0.0;
    Tally tally;
};

/**
 * Pace requests at @p rps for @p seconds on one connection (10%
 * deadline-busting), reading replies from a drain thread. Returns the
 * step's tally; every request gets exactly one response, so the drain
 * joins deterministically.
 */
OpenLoopStep
runOpenLoopStep(int port, double rps, double seconds, int step)
{
    LoadClient client(port);
    OpenLoopStep result;
    result.offeredRps = rps;
    const int total = std::max(1, int(rps * seconds));

    std::thread drain([&client, &result, total] {
        for (int i = 0; i < total; ++i) {
            const std::string line = client.readLine();
            if (line.empty())
                fatal("loadgen: server closed mid-sweep");
            result.tally.count(Json::parse(line));
        }
    });

    const auto t0 = std::chrono::steady_clock::now();
    const auto gap =
        std::chrono::duration<double>(seconds / double(total));
    for (int i = 0; i < total; ++i) {
        Json doc = Json::object();
        doc["id"] =
            Json("o" + std::to_string(step) + "-" + std::to_string(i));
        if (i % 10 == 9) {
            // Deadline-busting: an expensive run with a 1 ms budget.
            doc["workload"] = Json(std::string("mcf"));
            doc["deadline_ms"] = Json(uint64_t(1));
        } else {
            doc["workload"] = Json(std::string("twolf"));
            doc["max_insts"] = Json(
                uint64_t(40000 + 100000 * step + 10 * i));
        }
        ++result.tally.requests;
        client.sendLine(doc.dump());
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(gap * (i + 1)));
    }
    const auto sendEnd = std::chrono::steady_clock::now();
    drain.join();
    const double sendSeconds =
        std::chrono::duration<double>(sendEnd - t0).count();
    result.completedRps =
        sendSeconds > 0.0
            ? double(result.tally.ok + result.tally.deadline) /
                  sendSeconds
            : 0.0;
    return result;
}

void
runServeLoad()
{
    ServerConfig config;
    config.listen = ":0";
    config.workers = benchJobs();
    config.executors = std::max(2u, benchJobs());
    config.maxPending = 32;
    config.maxPendingPerClient = 16;
    SimServer server(config);
    server.start();
    std::printf("serve_load: daemon on 127.0.0.1:%d, %u executors\n",
                server.port(), config.executors);

    // Phase 1: deterministic closed loop.
    const int clients = 4;
    const int perClient = 25;
    ClosedLoopResult closed =
        runClosedLoop(server.port(), clients, perClient);
    const double p50 = percentile(closed.latenciesMs, 50.0);
    const double p99 = percentile(closed.latenciesMs, 99.0);
    std::printf("closed loop: %llu requests (%llu ok, %llu error, "
                "%llu malformed) in %.2fs, p50 %.2fms, p99 %.2fms\n",
                (unsigned long long)closed.tally.requests,
                (unsigned long long)closed.tally.ok,
                (unsigned long long)closed.tally.error,
                (unsigned long long)closed.tally.malformed,
                closed.seconds, p50, p99);
    if (closed.tally.shed != 0) {
        fatal("BENCH FAILURE: closed loop shed requests (clients never "
              "overlap enough to hit admission control)");
    }

    // Phase 2: open-loop arrival sweep until the daemon sheds hard.
    std::vector<OpenLoopStep> steps;
    double saturationRps = 0.0;
    for (int step = 0; step < 6; ++step) {
        const double rps = 100.0 * double(1 << step);
        OpenLoopStep s =
            runOpenLoopStep(server.port(), rps, 0.25, step);
        std::printf("open loop: offered %.0f rps -> completed %.0f "
                    "rps, %llu ok, %llu shed, %llu deadline\n",
                    s.offeredRps, s.completedRps,
                    (unsigned long long)s.tally.ok,
                    (unsigned long long)s.tally.shed,
                    (unsigned long long)s.tally.deadline);
        saturationRps = std::max(saturationRps, s.completedRps);
        const bool saturated =
            s.tally.shed * 5 >= s.tally.requests; // >= 20% shed
        steps.push_back(std::move(s));
        if (saturated)
            break;
    }

    // Artifact entry: deterministic counts at top level, everything
    // host-dependent under "latency"/"open_loop"/"host" (stripped by
    // validate_bench_json.py --compare).
    Json entry = Json::object();
    entry["requests"] = Json(closed.tally.requests);
    entry["ok"] = Json(closed.tally.ok);
    entry["error"] = Json(closed.tally.error);
    entry["malformed"] = Json(closed.tally.malformed);
    entry["shed"] = Json(closed.tally.shed);
    entry["deadline"] = Json(closed.tally.deadline);
    Json latency = Json::object();
    latency["p50_ms"] = Json(p50);
    latency["p99_ms"] = Json(p99);
    entry["latency"] = std::move(latency);
    Json open = Json::object();
    open["saturation_rps"] = Json(saturationRps);
    Json stepDocs = Json::array();
    for (const OpenLoopStep &s : steps) {
        Json doc = Json::object();
        doc["offered_rps"] = Json(s.offeredRps);
        doc["completed_rps"] = Json(s.completedRps);
        doc["requests"] = Json(s.tally.requests);
        doc["ok"] = Json(s.tally.ok);
        doc["shed"] = Json(s.tally.shed);
        doc["deadline"] = Json(s.tally.deadline);
        doc["error"] = Json(s.tally.error);
        stepDocs.push_back(std::move(doc));
    }
    open["steps"] = std::move(stepDocs);
    entry["open_loop"] = std::move(open);
    entry["host"] = hostSection(closed.seconds, closed.tally.insts);
    BenchJson::instance().record("twolf", "serve", std::move(entry));
    BenchJson::instance().write("serve_load", "service");

    server.requestShutdown();
    const int code = server.wait();
    if (code != 0)
        fatal(strFormat("BENCH FAILURE: daemon exited %d", code));
    std::printf("serve_load: daemon drained cleanly\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "serve_load");
    return benchGuard([] { runServeLoad(); });
}
