/**
 * @file
 * google-benchmark microbenchmarks of the DISE engine structures
 * themselves (Section 2.2): pattern-table matching against production
 * sets of varying size, replacement-table lookup under the different
 * geometries, instantiation-logic throughput, and end-to-end expansion
 * of a fetch stream. These measure the *simulator's* hot paths — the
 * structures every fetched instruction passes through.
 */

#include <benchmark/benchmark.h>

#include "bench/harness.hpp"
#include "src/acf/mfi.hpp"
#include "src/assembler/assembler.hpp"
#include "src/dise/engine.hpp"
#include "src/dise/parser.hpp"
#include "src/workloads/workloads.hpp"

namespace {

using namespace dise;

std::shared_ptr<ProductionSet>
patternsOfSize(unsigned patterns)
{
    auto set = std::make_shared<ProductionSet>();
    ReplacementSeq seq;
    seq.name = "R";
    seq.insts.push_back(rTriggerInsn());
    const SeqId id = set->addSequence(seq);
    // Distinct patterns: loads with each possible destination register.
    for (unsigned i = 0; i < patterns; ++i) {
        PatternSpec pattern;
        pattern.opclass = OpClass::Load;
        pattern.rd = static_cast<RegIndex>(i % 30);
        if (i >= 30)
            pattern.opcode = Opcode::LDL;
        set->addPattern(pattern, id);
    }
    return set;
}

void
BM_PatternMatch(benchmark::State &state)
{
    const auto set = patternsOfSize(unsigned(state.range(0)));
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 5, 9, 16));
    const DecodedInst add = decode(makeOperate(Opcode::ADDQ, 1, 2, 3));
    for (auto _ : state) {
        benchmark::DoNotOptimize(set->match(ld));
        benchmark::DoNotOptimize(set->match(add));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_PatternMatch)->Arg(2)->Arg(8)->Arg(32);

void
BM_Instantiate(benchmark::State &state)
{
    const ProductionSet set = parseProductions(
        "P1: class == load -> R1\n"
        "R1: srl T.RS, #26, $dr1\n"
        "    cmpeq $dr1, $dr2, $dr1\n"
        "    beq $dr1, @0x4000f00\n"
        "    T.INSN\n");
    const ReplacementSeq &seq = set.sequences().begin()->second;
    const DecodedInst trigger = decode(makeMemory(Opcode::LDQ, 5, 9, 16));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            instantiateSeq(seq, trigger, 0x4000000));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            seq.insts.size());
}
BENCHMARK(BM_Instantiate);

void
BM_EngineExpand(benchmark::State &state)
{
    // Alternating loads and adds: 50% trigger rate, like MFI on a
    // memory-heavy stream. Arg selects the RT geometry.
    DiseConfig config;
    config.rtEntries = uint32_t(state.range(0));
    config.rtAssoc = 2;
    DiseEngine engine(config);
    const Program dummy = assemble(".text\nmain:\n    nop\n"
                                   "error:\n    nop\n");
    MfiOptions mopts;
    engine.setProductions(std::make_shared<ProductionSet>(
        makeMfiProductions(dummy, mopts)));
    const DecodedInst ld = decode(makeMemory(Opcode::LDQ, 5, 9, 16));
    const DecodedInst add = decode(makeOperate(Opcode::ADDQ, 1, 2, 3));
    Addr pc = 0x4000000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.expand(ld, pc));
        benchmark::DoNotOptimize(engine.expand(add, pc + 4));
        pc += 8;
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_EngineExpand)->Arg(0)->Arg(64)->Arg(2048);

void
BM_ExpansionRate(benchmark::State &state)
{
    // Expansion-heavy stream: every fetched instruction triggers a
    // composed-scale replacement (a dictionary-entry body with each
    // memory instruction wrapped in the MFI check, as in Figure 8), so
    // items/sec IS expansions/sec. Arg(1) runs the memoized fast path,
    // Arg(0) forces re-instantiation on every expansion (slow path).
    // Same productions, same fetch stream, so architectural stats are
    // identical; only the instantiation work differs.
    DiseConfig config;
    config.rtEntries = 2048;
    config.rtAssoc = 2;
    config.expansionCache = state.range(0) != 0;
    DiseEngine engine(config);
    engine.setProductions(
        std::make_shared<ProductionSet>(parseProductions(
            "P1: class == load -> R1\n"
            "R1: srl T.RS, #26, $dr1\n"
            "    cmpeq $dr1, $dr2, $dr1\n"
            "    beq $dr1, @0x4000f00\n"
            "    ldq $dr3, T.IMM(T.RS)\n"
            "    srl $dr3, #26, $dr1\n"
            "    cmpeq $dr1, $dr2, $dr1\n"
            "    beq $dr1, @0x4000f00\n"
            "    addq $dr3, T.RT, $dr4\n"
            "    srl $dr4, #26, $dr1\n"
            "    cmpeq $dr1, $dr2, $dr1\n"
            "    beq $dr1, @0x4000f00\n"
            "    stq $dr4, T.IMM($dr3)\n"
            "    srl T.RS, #26, $dr1\n"
            "    cmpeq $dr1, $dr2, $dr1\n"
            "    beq $dr1, @0x4000f00\n"
            "    T.INSN\n")));
    // A small working set of static trigger sites, revisited like an
    // inner loop's loads are: the same (word, PC) pairs recur, which is
    // what the memoization keys on. MFI sequences branch to the error
    // handler, so they are PC-dependent and cache per site.
    std::vector<DecodedInst> triggers;
    for (uint8_t ra = 1; ra <= 64; ++ra)
        triggers.push_back(
            decode(makeMemory(Opcode::LDQ, ra % 30, 9, 8 * ra)));
    size_t i = 0;
    for (auto _ : state) {
        const size_t site = i++ % triggers.size();
        benchmark::DoNotOptimize(
            engine.expand(triggers[site], 0x4000000 + 4 * site));
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
    state.counters["expansions/s"] = benchmark::Counter(
        double(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExpansionRate)->Arg(1)->Arg(0);

void
BM_FunctionalSimThroughput(benchmark::State &state)
{
    WorkloadSpec spec = workloadSpec("bzip2");
    spec.targetDynInsts = 50000;
    spec.kernelIters = 500;
    const Program prog = buildWorkload(spec);
    for (auto _ : state) {
        ExecCore core(prog);
        const RunResult result = core.run();
        benchmark::DoNotOptimize(result.dynInsts);
        state.SetItemsProcessed(int64_t(result.dynInsts));
    }
}
BENCHMARK(BM_FunctionalSimThroughput)->Unit(benchmark::kMillisecond);

void
BM_DiseSimThroughput(benchmark::State &state)
{
    // items/sec here is simulated instructions per second (MIPS when
    // divided by 1e6). Arg(1) = expansion fast path, Arg(0) = slow.
    WorkloadSpec spec = workloadSpec("bzip2");
    spec.targetDynInsts = 50000;
    spec.kernelIters = 500;
    const Program prog = buildWorkload(spec);
    MfiOptions mopts;
    auto set =
        std::make_shared<ProductionSet>(makeMfiProductions(prog, mopts));
    DiseConfig config;
    config.expansionCache = state.range(0) != 0;
    uint64_t simulated = 0;
    for (auto _ : state) {
        DiseController controller(config);
        controller.install(set);
        ExecCore core(prog, &controller);
        initMfiRegisters(core, prog);
        const RunResult result = core.run();
        benchmark::DoNotOptimize(result.dynInsts);
        simulated += result.dynInsts;
        state.SetItemsProcessed(int64_t(simulated));
    }
    state.counters["sim-MIPS"] = benchmark::Counter(
        double(simulated) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiseSimThroughput)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

/**
 * Console reporter that additionally records every run into the
 * DISE_BENCH_JSON artifact: "BM_Name/arg" maps to workload BM_Name,
 * regime arg ("default" for argless benchmarks).
 */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        ConsoleReporter::ReportRuns(reports);
        for (const Run &run : reports) {
            if (run.error_occurred ||
                run.run_type != Run::RT_Iteration) {
                continue;
            }
            const std::string name = run.benchmark_name();
            const size_t slash = name.find('/');
            const std::string workload = name.substr(0, slash);
            const std::string regime =
                slash == std::string::npos ? "default"
                                           : name.substr(slash + 1);
            Json entry = dise::Json::object();
            entry["iterations"] = Json(uint64_t(run.iterations));
            Json counters = dise::Json::object();
            for (const auto &kv : run.counters)
                counters[kv.first] = Json(double(kv.second));
            const auto items = run.counters.find("items_per_second");
            entry["items_per_second"] = Json(
                items != run.counters.end() ? double(items->second)
                                            : 0.0);
            // Guest insts/sec only for benchmarks that simulate guest
            // code (they publish sim-MIPS); expansion micros report 0.
            const auto mips = run.counters.find("sim-MIPS");
            entry["host"] = dise::bench::hostSection(
                run.real_accumulated_time,
                mips != run.counters.end()
                    ? uint64_t(double(mips->second) * 1e6 *
                               run.real_accumulated_time)
                    : 0);
            entry["counters"] = std::move(counters);
            dise::bench::BenchJson::instance().record(workload, regime,
                                                      std::move(entry));
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    // Shared bench flags first (stripped), the rest to Google Benchmark.
    dise::bench::benchInit(argc, argv, "bench_engine_micro");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    return dise::bench::benchGuard([] {
        RecordingReporter reporter;
        benchmark::RunSpecifiedBenchmarks(&reporter);
        benchmark::Shutdown();
        dise::bench::BenchJson::instance().write("engine_micro",
                                                 "micro");
    });
}
