/**
 * @file
 * Seeded fault-injection campaigns demonstrating the reliability value
 * of the fault-detecting ACFs (paper Section 3.1): the same planned
 * single-bit faults are replayed against a workload under three regimes
 * — no ACF, MFI segment matching (DISE3), and MFI merged with the
 * watchpoint assertion — and the outcome distribution shows the ACFs
 * converting silent corruption and benign-by-luck runs into explicit
 * detections. A second campaign pair injects faults into the resident
 * PT/RT entries and shows per-entry parity detecting and recovering
 * (invalidate + re-fault through the controller) what an unprotected
 * table consumes silently.
 *
 * The bench asserts its own acceptance criteria and exits nonzero when
 * they fail:
 *   - no trial may leak a C++ exception out of the simulator,
 *   - the MFI+watchpoint detected fraction strictly exceeds the no-ACF
 *     baseline's,
 *   - re-running a campaign with the same seed reproduces bit-identical
 *     classifications.
 *
 * Campaign shape comes from BenchConfig: --fault-trials/--fault-seed
 * flags or the DISE_FAULT_TRIALS/DISE_FAULT_SEED env vars (defaults
 * 48 / 2003). Trials fan out across the bench scheduler (--jobs);
 * aggregation is in trial order, so the classification vectors — and
 * the JSON artifact modulo host sections — are bit-identical at any
 * worker count.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/harness.hpp"
#include "src/acf/assertions.hpp"
#include "src/acf/compose.hpp"
#include "src/faults/campaign.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

std::vector<std::string>
outcomeRow(const std::string &regime, const char *target,
           const CampaignResult &r)
{
    std::vector<std::string> row{regime, target};
    for (size_t i = 0; i < kNumTrialOutcomes; ++i)
        row.push_back(std::to_string(r.counts[i]));
    row.push_back(TextTable::num(r.detectedFraction(), 3));
    return row;
}

std::vector<std::string>
outcomeHeader()
{
    std::vector<std::string> header{"regime", "targets"};
    for (size_t i = 0; i < kNumTrialOutcomes; ++i)
        header.push_back(
            trialOutcomeName(static_cast<TrialOutcome>(i)));
    header.push_back("detected");
    return header;
}

std::string
targetsLabel(const CampaignConfig &cfg)
{
    std::string label;
    for (const FaultTarget t : cfg.targets) {
        if (!label.empty())
            label += "+";
        label += faultTargetName(t);
    }
    return label;
}

bool
sameClassifications(const CampaignResult &a, const CampaignResult &b)
{
    if (a.trials.size() != b.trials.size())
        return false;
    for (size_t i = 0; i < a.trials.size(); ++i) {
        if (a.trials[i].outcome != b.trials[i].outcome ||
            a.trials[i].parityDetections != b.trials[i].parityDetections)
            return false;
    }
    return true;
}

/**
 * Abort the bench. Throws (FatalError) instead of exiting so the
 * failure unwinds to benchGuard() in main, mirroring harness check().
 */
[[noreturn]] void
fail(const std::string &what)
{
    fatal("BENCH FAILURE: " + what);
}

/** JSON-artifact entry for one campaign (see DESIGN.md schema). */
Json
campaignEntry(const CampaignResult &r, double hostSeconds)
{
    Json entry = campaignToJson(r);
    entry["host"] = hostSection(hostSeconds, r.totalDynInsts);
    return entry;
}

void
runFaultCampaignBench()
{
    const uint32_t trials = BenchConfig::get().faultTrials;
    const uint64_t seed = BenchConfig::get().faultSeed;

    // A scaled-down workload keeps trials (each up to 4x the golden
    // run) affordable while exercising generated code, not a toy.
    WorkloadSpec spec = workloadSpec("gzip");
    spec.kernelIters = std::max(1u, spec.kernelIters / 16);
    spec.targetDynInsts = 120000;
    const Program prog = buildWorkload(spec);

    MfiOptions mfiOpts;
    mfiOpts.variant = MfiVariant::Dise3;
    const auto mfiSet =
        std::make_shared<const ProductionSet>(
            makeMfiProductions(prog, mfiOpts));
    const auto mergedSet = std::make_shared<const ProductionSet>(
        composeMerged(makeMfiProductions(prog, mfiOpts),
                      makeWatchpointProductions(prog)));
    // Guard cell the program never writes, above the stack region; any
    // nonzero store landing there trips the assertion.
    const Addr watchAddr =
        prog.dataBase + (Addr(1) << (kSegmentShift - 1)) + (Addr(1) << 20);

    const CampaignSetup noAcf{&prog, nullptr, nullptr, DiseConfig{}};
    const CampaignSetup mfi{
        &prog, [mfiSet] { return mfiSet; },
        [&prog](ExecCore &core) { initMfiRegisters(core, prog); },
        DiseConfig{}};
    const CampaignSetup mfiWp{
        &prog, [mergedSet] { return mergedSet; },
        [&prog, watchAddr](ExecCore &core) {
            initMfiRegisters(core, prog);
            initWatchpointRegisters(core, watchAddr, 0);
        },
        DiseConfig{}};

    CampaignConfig archCfg;
    archCfg.seed = seed;
    archCfg.trials = trials;
    // O(delta) snapshot replay by default; --fault-full-replay selects
    // the from-reset reference mode (same classifications and artifact
    // modulo the host and replay sections — CI diffs the two).
    archCfg.useSnapshots = !BenchConfig::get().faultFullReplay;

    // Timed wrapper that records each campaign into the JSON artifact.
    const auto campaign = [&spec](const CampaignSetup &setup,
                                  const CampaignConfig &cfg,
                                  const char *regime) {
        const auto t0 = std::chrono::steady_clock::now();
        const CampaignResult r =
            runCampaign(setup, cfg, &benchScheduler());
        if (BenchJson::instance().enabled()) {
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            BenchJson::instance().record(spec.name, regime,
                                         campaignEntry(r, secs));
        }
        return r;
    };

    // ---- Campaign A: architectural faults across ACF regimes. ----
    std::printf("fault campaign: %u trials/regime, seed %llu, workload "
                "%s, %s replay\n\n",
                trials, (unsigned long long)seed, spec.name.c_str(),
                archCfg.useSnapshots ? "snapshot" : "full");

    TextTable tableA(outcomeHeader());
    const CampaignResult rNone = campaign(noAcf, archCfg, "no_acf");
    const CampaignResult rMfi = campaign(mfi, archCfg, "mfi_dise3");
    const CampaignResult rMfiWp =
        campaign(mfiWp, archCfg, "mfi_watchpoint");
    const std::string archTargets = targetsLabel(archCfg);
    tableA.addRow(outcomeRow("no-acf", archTargets.c_str(), rNone));
    tableA.addRow(outcomeRow("mfi-dise3", archTargets.c_str(), rMfi));
    tableA.addRow(outcomeRow("mfi+watchpoint", archTargets.c_str(),
                             rMfiWp));
    std::fputs(tableA.render().c_str(), stdout);
    std::printf("\n");

    // ---- Campaign B: PT/RT faults, parity off vs on. ----
    CampaignConfig tableCfg = archCfg;
    tableCfg.targets = {FaultTarget::PtEntry, FaultTarget::RtEntry};
    CampaignSetup mfiParity = mfi;
    mfiParity.diseConfig.parityChecks = true;

    const CampaignResult rNoParity =
        campaign(mfi, tableCfg, "ptrt_no_parity");
    const CampaignResult rParity =
        campaign(mfiParity, tableCfg, "ptrt_parity");

    TextTable tableB({"regime", "targets", "injected", "parity-detected",
                      "recovered", "benign", "detected-acf",
                      "detected-trap", "hang", "silent-corruption"});
    const auto parityRow = [&](const char *regime,
                               const CampaignResult &r) {
        tableB.addRow(
            {regime, targetsLabel(tableCfg),
             std::to_string(r.injected),
             std::to_string(r.parityDetected),
             std::to_string(r.parityRecovered),
             std::to_string(r.count(TrialOutcome::Benign)),
             std::to_string(r.count(TrialOutcome::DetectedByAcf)),
             std::to_string(r.count(TrialOutcome::DetectedByTrap)),
             std::to_string(r.count(TrialOutcome::Hang)),
             std::to_string(
                 r.count(TrialOutcome::SilentCorruption))});
    };
    parityRow("pt/rt no-parity", rNoParity);
    parityRow("pt/rt parity", rParity);
    std::fputs(tableB.render().c_str(), stdout);
    std::printf("\n");

    // ---- Acceptance checks. ----
    const uint64_t uncaught =
        rNone.uncaughtExceptions + rMfi.uncaughtExceptions +
        rMfiWp.uncaughtExceptions + rNoParity.uncaughtExceptions +
        rParity.uncaughtExceptions;
    if (uncaught != 0)
        fail(strFormat("%llu C++ exceptions escaped the simulator",
                       (unsigned long long)uncaught));

    // The strict-improvement check needs a meaningful sample: uniform
    // single-bit flips only occasionally produce the wild accesses the
    // ACFs catch, so tiny smoke runs may see zero in both regimes.
    if (trials >= 24 &&
        !(rMfiWp.detectedFraction() > rNone.detectedFraction())) {
        fail(strFormat("MFI+watchpoint detected fraction %.3f does not "
                       "exceed the no-ACF baseline %.3f",
                       rMfiWp.detectedFraction(),
                       rNone.detectedFraction()));
    }

    const CampaignResult rMfiWpAgain =
        runCampaign(mfiWp, archCfg, &benchScheduler());
    if (!sameClassifications(rMfiWp, rMfiWpAgain))
        fail("same-seed campaign replay diverged");

    const uint64_t replayed = rNone.replayedInsts + rMfi.replayedInsts +
                              rMfiWp.replayedInsts +
                              rNoParity.replayedInsts +
                              rParity.replayedInsts;
    const uint64_t saved = rNone.savedInsts + rMfi.savedInsts +
                           rMfiWp.savedInsts + rNoParity.savedInsts +
                           rParity.savedInsts;
    std::printf("replay: %llu insts executed, %llu saved vs full "
                "replay\n",
                (unsigned long long)replayed, (unsigned long long)saved);
    std::printf("acceptance: detected %0.3f (mfi+wp) vs %0.3f (no-acf)%s"
                "; replay deterministic; zero escaped exceptions\n",
                rMfiWp.detectedFraction(), rNone.detectedFraction(),
                trials >= 24 ? " (strict improvement enforced)"
                             : " (small sample: not enforced)");
    BenchJson::instance().write("fault_campaign", "campaign");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "bench_fault_campaign");
    return benchGuard(runFaultCampaignBench);
}
