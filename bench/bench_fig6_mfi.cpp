/**
 * @file
 * Figure 6 — memory fault isolation (paper Section 4.1).
 *
 * Panel A: execution time normalized to the unprotected run on the
 *   baseline 4-wide/32KB machine, for the binary-rewriting baseline and
 *   four DISE design points: DISE4 (rewriting's 4-instruction check,
 *   free engine), DISE4 with the 1-cycle-stall-per-expansion placement,
 *   DISE4 with the extra-pipe-stage placement, and DISE3 (the
 *   3-instruction check only DISE's control-flow model permits).
 *
 * Panel B: DISE3 vs rewriting across I-cache sizes (8K/32K/128K/perfect)
 *   — isolates the static (cache-footprint) cost that only the software
 *   implementation pays.
 *
 * Panel C: DISE3 vs rewriting across machine widths (1/2/4/8) at 32KB —
 *   wider machines absorb DISE's dynamic cost; rewriting's static cost
 *   remains.
 */

#include <cmath>

#include "harness.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

void
runFigure6()
{
    std::printf("==========================================================\n");
    std::printf("Figure 6: Memory Fault Isolation (normalized exec time)\n");
    std::printf("==========================================================\n\n");

    const auto specs = selectedSpecs();

    auto mfiSet = [&](const Program &prog, MfiVariant variant) {
        MfiOptions opts;
        opts.variant = variant;
        return std::make_shared<ProductionSet>(
            makeMfiProductions(prog, opts));
    };
    auto diseCfg = [](DisePlacement placement) {
        DiseConfig config;
        config.placement = placement;
        config.rtEntries = 2048;
        config.rtAssoc = 2;
        return config;
    };

    // ---- Panel A ----
    {
        std::printf("-- Panel A: implementations and engine placements "
                    "(4-wide, 32KB I$); 'sandbox' is the checking-free "
                    "SFI variant (extension) --\n");
        TextTable table({"bench", "rewrite", "DISE4", "+stall", "+pipe",
                         "DISE3", "sandbox", "exp/app-inst"});
        std::vector<double> gRewrite, gD4, gStall, gPipe, gD3, gSbx;
        struct Row
        {
            std::vector<std::string> cells;
            double rw, d4, stall, pipe, d3, sbx;
        };
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            const PipelineParams machine = baselineMachine();
            const TimingResult base =
                runNative(prog, machine, spec.name, "base");
            check(base, spec.name + " base");

            const Program rewritten = applyMfiRewriting(prog);
            const TimingResult rw =
                runNative(rewritten, machine, spec.name, "rewrite");
            check(rw, spec.name + " rewrite");

            const TimingResult d4 =
                runDise(prog, machine, mfiSet(prog, MfiVariant::Dise4),
                        diseCfg(DisePlacement::Free), true, nullptr,
                        spec.name, "dise4");
            const TimingResult stall =
                runDise(prog, machine, mfiSet(prog, MfiVariant::Dise4),
                        diseCfg(DisePlacement::Stall), true, nullptr,
                        spec.name, "dise4_stall");
            const TimingResult pipe =
                runDise(prog, machine, mfiSet(prog, MfiVariant::Dise4),
                        diseCfg(DisePlacement::Pipe), true, nullptr,
                        spec.name, "dise4_pipe");
            const TimingResult d3 =
                runDise(prog, machine, mfiSet(prog, MfiVariant::Dise3),
                        diseCfg(DisePlacement::Free), true, nullptr,
                        spec.name, "dise3");
            check(d3, spec.name + " dise3");
            const TimingResult sbx = runDise(
                prog, machine, mfiSet(prog, MfiVariant::Sandbox),
                diseCfg(DisePlacement::Free), true, nullptr, spec.name,
                "sandbox");
            check(sbx, spec.name + " sandbox");

            const double b = double(base.cycles);
            const double expRate =
                double(d3.arch.expansions) / double(d3.arch.appInsts);
            Row row;
            row.cells = {spec.name, TextTable::num(rw.cycles / b),
                         TextTable::num(d4.cycles / b),
                         TextTable::num(stall.cycles / b),
                         TextTable::num(pipe.cycles / b),
                         TextTable::num(d3.cycles / b),
                         TextTable::num(sbx.cycles / b),
                         TextTable::num(expRate, 2)};
            row.rw = rw.cycles / b;
            row.d4 = d4.cycles / b;
            row.stall = stall.cycles / b;
            row.pipe = pipe.cycles / b;
            row.d3 = d3.cycles / b;
            row.sbx = sbx.cycles / b;
            return row;
        });
        for (const Row &row : rows) {
            table.addRow(row.cells);
            gRewrite.push_back(row.rw);
            gD4.push_back(row.d4);
            gStall.push_back(row.stall);
            gPipe.push_back(row.pipe);
            gD3.push_back(row.d3);
            gSbx.push_back(row.sbx);
        }
        table.addRow({"geomean", TextTable::num(geomean(gRewrite)),
                      TextTable::num(geomean(gD4)),
                      TextTable::num(geomean(gStall)),
                      TextTable::num(geomean(gPipe)),
                      TextTable::num(geomean(gD3)),
                      TextTable::num(geomean(gSbx)), ""});
        std::printf("%s\n", table.render().c_str());
    }

    // ---- Panel B ----
    {
        std::printf("-- Panel B: I-cache size (DISE3 w/ pipe placement "
                    "vs rewriting; normalized to native @ same cache) --\n");
        TextTable table({"bench", "rw@8K", "d3@8K", "rw@32K", "d3@32K",
                         "rw@128K", "d3@128K", "rw@perf", "d3@perf"});
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            const Program rewritten = applyMfiRewriting(prog);
            std::vector<std::string> row = {spec.name};
            for (const uint32_t kb : {8u, 32u, 128u, 0u}) {
                const std::string sz =
                    kb ? std::to_string(kb) + "K" : "perfect";
                const PipelineParams machine = baselineMachine(kb);
                const TimingResult base = runNative(
                    prog, machine, spec.name, "base_icache" + sz);
                const TimingResult rw = runNative(
                    rewritten, machine, spec.name, "rewrite_icache" + sz);
                const TimingResult d3 = runDise(
                    prog, machine, mfiSet(prog, MfiVariant::Dise3),
                    diseCfg(DisePlacement::Pipe), true, nullptr,
                    spec.name, "dise3_icache" + sz);
                row.push_back(
                    TextTable::num(double(rw.cycles) / base.cycles));
                row.push_back(
                    TextTable::num(double(d3.cycles) / base.cycles));
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }

    // ---- Panel C ----
    {
        std::printf("-- Panel C: machine width @ 32KB I$ (normalized to "
                    "native @ same width) --\n");
        TextTable table({"bench", "rw@1w", "d3@1w", "rw@2w", "d3@2w",
                         "rw@4w", "d3@4w", "rw@8w", "d3@8w"});
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            const Program rewritten = applyMfiRewriting(prog);
            std::vector<std::string> row = {spec.name};
            for (const uint32_t width : {1u, 2u, 4u, 8u}) {
                const std::string w = "w" + std::to_string(width);
                const PipelineParams machine = baselineMachine(32, width);
                const TimingResult base =
                    runNative(prog, machine, spec.name, "base_" + w);
                const TimingResult rw = runNative(rewritten, machine,
                                                  spec.name,
                                                  "rewrite_" + w);
                const TimingResult d3 = runDise(
                    prog, machine, mfiSet(prog, MfiVariant::Dise3),
                    diseCfg(DisePlacement::Pipe), true, nullptr,
                    spec.name, "dise3_" + w);
                row.push_back(
                    TextTable::num(double(rw.cycles) / base.cycles));
                row.push_back(
                    TextTable::num(double(d3.cycles) / base.cycles));
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }
    BenchJson::instance().write("fig6_mfi", "timing");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "bench_fig6_mfi");
    return benchGuard(runFigure6);
}
