/**
 * @file
 * Figure 7 — dynamic code decompression (paper Section 4.2).
 *
 * Panel A: static code size (text, and text+dictionary) normalized to
 *   the uncompressed text, across the feature ablation of the paper:
 *     dedicated   — decoder-based decompressor baseline [20]: 2-byte
 *                   codewords, single-instruction entries,
 *                   unparameterized 4-byte dictionary entries
 *     -1insn      — dedicated without single-instruction compression
 *     -2byteCW    — ... and with 4-byte codewords (the DISE encoding)
 *     +8byteDE    — ... and 8-byte dictionary entries (directive cost,
 *                   still unparameterized)
 *     +3param     — ... plus three parameters per entry
 *     DISE        — ... plus PC-relative branch compression (full DISE)
 *
 * Panel B: execution time of DISE decompression (perfect RT) across
 *   I-cache sizes, normalized to the uncompressed 32KB-cache run.
 *
 * Panel C: realistic RTs. Our programs and dictionaries are roughly an
 *   order of magnitude smaller than SPEC's, so alongside the paper's
 *   512/2K-entry points we report 64/256-entry RTs, which sit at the
 *   same dictionary-size/RT-size ratios the paper explores (see
 *   EXPERIMENTS.md). RT misses flush and stall for 30 cycles.
 */

#include "harness.hpp"

using namespace dise;
using namespace dise::bench;

namespace {

CompressorOptions
ablationOptions(const std::string &config)
{
    CompressorOptions opts = dedicatedDecompressorOptions();
    if (config == "dedicated")
        return opts;
    opts.allowSingleInst = false;
    if (config == "-1insn")
        return opts;
    opts.codewordBytes = 4;
    if (config == "-2byteCW")
        return opts;
    opts.dictEntryBytes = 8;
    if (config == "+8byteDE")
        return opts;
    opts.maxParams = 3;
    if (config == "+3param")
        return opts;
    opts.compressBranches = true; // full DISE
    return opts;
}

void
runFigure7()
{
    std::printf("==========================================================\n");
    std::printf("Figure 7: Dynamic Code Decompression\n");
    std::printf("==========================================================\n\n");

    const auto specs = selectedSpecs();

    // ---- Panel A: static size ablation. ----
    {
        std::printf("-- Panel A: compressed size / original text "
                    "(text, +dict adds the dictionary) --\n");
        const std::vector<std::string> configs = {
            "dedicated", "-1insn", "-2byteCW", "+8byteDE", "+3param",
            "DISE"};
        std::vector<std::string> header = {"bench"};
        for (const auto &config : configs) {
            header.push_back(config);
            header.push_back("+dict");
        }
        TextTable table(header);
        std::map<std::string, std::vector<double>> g;
        struct Row
        {
            std::vector<std::string> cells;
            std::vector<double> ratios, withDict;
        };
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            Row row;
            row.cells = {spec.name};
            for (const auto &config : configs) {
                const auto result =
                    compressProgram(prog, ablationOptions(config));
                row.cells.push_back(TextTable::num(result.ratio()));
                row.cells.push_back(
                    TextTable::num(result.ratioWithDict()));
                row.ratios.push_back(result.ratio());
                row.withDict.push_back(result.ratioWithDict());
            }
            return row;
        });
        for (const Row &row : rows) {
            table.addRow(row.cells);
            for (size_t c = 0; c < configs.size(); ++c) {
                g[configs[c]].push_back(row.ratios[c]);
                g[configs[c] + "+d"].push_back(row.withDict[c]);
            }
        }
        std::vector<std::string> mean = {"geomean"};
        for (const auto &config : configs) {
            mean.push_back(TextTable::num(geomean(g[config])));
            mean.push_back(TextTable::num(geomean(g[config + "+d"])));
        }
        table.addRow(mean);
        std::printf("%s\n", table.render().c_str());
    }

    // ---- Panel B: execution time vs I-cache size (perfect RT). ----
    {
        std::printf("-- Panel B: DISE decompression exec time, perfect "
                    "RT (normalized to uncompressed @ 32KB) --\n");
        TextTable table({"bench", "unc@8K", "cmp@8K", "unc@32K",
                         "cmp@32K", "unc@128K", "cmp@128K", "unc@perf",
                         "cmp@perf"});
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            const auto comp = compressProgram(prog);
            const TimingResult ref =
                runNative(prog, baselineMachine(32), spec.name, "base");
            check(ref, spec.name + " base");
            std::vector<std::string> row = {spec.name};
            for (const uint32_t kb : {8u, 32u, 128u, 0u}) {
                const std::string sz =
                    kb ? std::to_string(kb) + "K" : "perfect";
                const PipelineParams machine = baselineMachine(kb);
                const TimingResult unc =
                    runNative(prog, machine, spec.name,
                              "uncompressed_icache" + sz);
                DiseConfig config;
                config.rtEntries = 0; // perfect RT
                const TimingResult cmp = runDise(
                    comp.compressed, machine, comp.dictionary, config,
                    false, nullptr, spec.name,
                    "compressed_icache" + sz);
                check(cmp, spec.name + " compressed");
                row.push_back(
                    TextTable::num(double(unc.cycles) / ref.cycles));
                row.push_back(
                    TextTable::num(double(cmp.cycles) / ref.cycles));
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }

    // ---- Panel C: RT geometry (32KB I$). ----
    {
        std::printf("-- Panel C: RT configurations (normalized to "
                    "uncompressed @ 32KB; paper sizes and scaled "
                    "sizes) --\n");
        TextTable table({"bench", "perfRT", "2K/2w", "2K/dm", "512/2w",
                         "512/dm", "256/2w", "256/dm", "64/2w",
                         "64/dm"});
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            const auto comp = compressProgram(prog);
            const PipelineParams machine = baselineMachine(32);
            const TimingResult ref = runNative(prog, machine);
            std::vector<std::string> row = {spec.name};
            auto rtRun = [&](uint32_t entries, uint32_t assoc) {
                DiseConfig config;
                config.rtEntries = entries;
                config.rtAssoc = assoc;
                const std::string regime =
                    entries ? "rt" + std::to_string(entries) + "_" +
                                  std::to_string(assoc) + "w"
                            : "rt_perfect";
                const TimingResult r =
                    runDise(comp.compressed, machine, comp.dictionary,
                            config, false, nullptr, spec.name, regime);
                check(r, spec.name + " rt");
                return TextTable::num(double(r.cycles) / ref.cycles);
            };
            row.push_back(rtRun(0, 1));
            for (const uint32_t entries : {2048u, 512u, 256u, 64u}) {
                row.push_back(rtRun(entries, 2));
                row.push_back(rtRun(entries, 1));
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }

    // Dictionary/RT footprint context for Panel C.
    {
        TextTable table({"bench", "dictEntries", "dictInsts",
                         "codewords", "textKB"});
        const auto rows = mapSpecs(specs, [&](const WorkloadSpec &spec) {
            const Program &prog = program(spec);
            const auto comp = compressProgram(prog);
            return std::vector<std::string>{
                spec.name, std::to_string(comp.dictEntries),
                std::to_string(comp.dictionary->totalReplacementInsts()),
                std::to_string(comp.codewords),
                TextTable::num(prog.textBytes() / 1024.0, 1)};
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("%s\n", table.render().c_str());
    }
    BenchJson::instance().write("fig7_decompression", "timing");
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "bench_fig7_decompression");
    return benchGuard(runFigure7);
}
